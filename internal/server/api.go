package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/catalog"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/pipeline"
)

// The catalog/jobs REST API. Error discipline (the point of the
// status-code satellite): unknown graph or job ids are 404, malformed
// bodies/options are 400, admission-control rejection is 429, name
// collisions and pinned-graph deletes are 409, over-budget uploads are
// 413, and only genuinely unexpected failures fall through to 500.

// apiError is the JSON error envelope every non-2xx API response uses.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// codeFor maps the catalog/jobs sentinel errors onto HTTP status codes.
func codeFor(err error) int {
	switch {
	case errors.Is(err, catalog.ErrNotFound), errors.Is(err, jobs.ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, jobs.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, catalog.ErrExists), errors.Is(err, catalog.ErrPinned):
		return http.StatusConflict
	case errors.Is(err, catalog.ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, catalog.ErrBadName):
		return http.StatusBadRequest
	case errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// --- /graphs ------------------------------------------------------------

func (s *Server) handleGraphsList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"graphs": s.cat.List(),
		"bytes":  s.cat.Bytes(),
	})
}

// handleGraphUpload registers the request body as a named graph:
// POST /graphs?name=web&format=edges[&weighted=1], body = graph file.
func (s *Server) handleGraphUpload(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing required query parameter: name"))
		return
	}
	format := defaultStr(q.Get("format"), "edges")
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	g, err := graph.Read(body, format, graph.BuildOptions{Weighted: q.Get("weighted") == "1"})
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("upload exceeds %d bytes", s.cfg.MaxUploadBytes))
			return
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parsing %s upload: %w", format, err))
		return
	}
	if err := s.cat.Add(name, g, "upload"); err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	// Snapshot the upload so a restart rebuilds this shard of the catalog
	// (best-effort: the upload itself already succeeded).
	if s.cfg.DataDir != "" {
		if err := catalog.SaveGraph(s.graphsDir(), name, g); err != nil {
			s.logf("persisting graph %q: %v", name, err)
		}
	}
	writeJSON(w, http.StatusCreated, map[string]interface{}{
		"name":     name,
		"vertices": g.NumV,
		"edges":    g.NumEdges(),
		"bytes":    catalog.GraphBytes(g),
		"weighted": g.Weighted(),
	})
}

func (s *Server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.cat.Remove(name); err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	if s.cfg.DataDir != "" {
		if err := catalog.RemoveSaved(s.graphsDir(), name); err != nil {
			s.logf("removing persisted graph %q: %v", name, err)
		}
	}
	s.mu.Lock()
	delete(s.views, name)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// --- per-graph views ----------------------------------------------------

// lookupView resolves {name} to an installed view, writing the right
// error (404 unknown, 409 known-but-not-laid-out) when it cannot.
func (s *Server) lookupView(w http.ResponseWriter, r *http.Request) (*view, bool) {
	name := r.PathValue("name")
	v, known, laidOut := s.viewOf(name)
	switch {
	case laidOut:
		return v, true
	case known:
		writeErr(w, http.StatusConflict,
			fmt.Errorf("graph %q has no layout yet; submit a job with POST /jobs", name))
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown graph %q", name))
	}
	return nil, false
}

func (s *Server) handleGraphLayoutPNG(w http.ResponseWriter, r *http.Request) {
	if v, ok := s.lookupView(w, r); ok {
		s.servePNG(w, r, v)
	}
}

func (s *Server) handleGraphLayoutSVG(w http.ResponseWriter, r *http.Request) {
	if v, ok := s.lookupView(w, r); ok {
		s.serveSVG(w, r, v)
	}
}

func (s *Server) handleGraphZoom(w http.ResponseWriter, r *http.Request) {
	if v, ok := s.lookupView(w, r); ok {
		s.serveZoom(w, r, v)
	}
}

func (s *Server) handleGraphStats(w http.ResponseWriter, r *http.Request) {
	if v, ok := s.lookupView(w, r); ok {
		s.serveStats(w, r, v)
	}
}

// --- /jobs --------------------------------------------------------------

// jobRequest is the POST /jobs body. Unknown fields are rejected so a
// typoed option fails loudly (400) instead of running with defaults.
type jobRequest struct {
	Graph        string `json:"graph"`
	Algorithm    string `json:"algorithm"`
	Subspace     int    `json:"subspace"`
	Dims         int    `json:"dims"`
	Seed         uint64 `json:"seed"`
	Coupled      bool   `json:"coupled"`
	PlainOrtho   bool   `json:"plainOrtho"`
	RefineSweeps int    `json:"refineSweeps"`
	SkipQuality  bool   `json:"skipQuality"`
}

// parseAlgorithm maps the API spelling onto pipeline.Algorithm.
func parseAlgorithm(name string) (pipeline.Algorithm, error) {
	switch name {
	case "", "parhde":
		return pipeline.ParHDE, nil
	case "phde":
		return pipeline.PHDE, nil
	case "pivotmds":
		return pipeline.PivotMDS, nil
	case "multilevel":
		return pipeline.Multilevel, nil
	case "prior":
		return pipeline.Prior, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (have parhde, phde, pivotmds, multilevel, prior)", name)
	}
}

// validateJobRequest bounds the numeric options so a hostile body cannot
// request an absurd amount of work or trip internal panics.
func validateJobRequest(req jobRequest) error {
	switch {
	case req.Graph == "":
		return errors.New("missing required field: graph")
	case req.Subspace < 0 || req.Subspace > 4096:
		return fmt.Errorf("subspace %d out of range [0, 4096]", req.Subspace)
	case req.Dims < 0 || req.Dims > 16:
		return fmt.Errorf("dims %d out of range [0, 16]", req.Dims)
	case req.RefineSweeps < 0 || req.RefineSweeps > 1_000_000:
		return fmt.Errorf("refineSweeps %d out of range [0, 1000000]", req.RefineSweeps)
	}
	return nil
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req jobRequest
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("malformed job request: %w", err))
		return
	}
	alg, err := parseAlgorithm(req.Algorithm)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := validateJobRequest(req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Journal the canonical (validated, re-marshaled) request as the
	// job's intent spec: if this process dies before the job resolves,
	// the restart replays exactly this submission (see recover.go).
	spec, err := json.Marshal(req)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	j, err := s.eng.SubmitSpec(req.Graph, submitConfig(alg, req), spec)
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": s.eng.List()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.eng.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.eng.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}
