package server

import (
	"errors"
	"sync"
)

// errFlightAborted is what waiters observe when the executing caller
// panicked before producing a result.
var errFlightAborted = errors.New("server: in-flight render aborted")

// flightGroup deduplicates concurrent work by key (a minimal stdlib-only
// singleflight): while a render for key is in flight, later callers block
// on it and share its result instead of redoing the work. This is the fix
// for the thundering-herd race where N concurrent requests for the same
// uncached view each ran a full core.Zoom layout and render.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done   chan struct{}
	joined int // waiters sharing this call; guarded by flightGroup.mu
	val    []byte
	err    error
}

// joiners reports how many callers are currently sharing the in-flight
// call for key (0 when nothing is in flight). Used by tests to sequence
// deterministically against the flight lifecycle.
func (g *flightGroup) joiners(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.joined
	}
	return 0
}

// Do runs fn once per key among concurrent callers; every caller gets the
// same result. shared reports whether this caller joined an existing
// flight rather than running fn itself.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		c.joined++
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	completed := false
	defer func() {
		// Release waiters even if fn panics; the panic propagates to this
		// caller (and net/http's recovery) while waiters get an error.
		if !completed {
			c.err = errFlightAborted
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	completed = true
	return c.val, false, c.err
}
