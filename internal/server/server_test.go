package server

import (
	"encoding/json"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func newTestServerPair(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	g := gen.PlateWithHoles(30, 30)
	s, err := NewWithConfig(g, core.Options{Subspace: 10, Seed: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	_, ts := newTestServerPair(t, Config{})
	return ts
}

func TestIndexPage(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(b)
	if !strings.Contains(body, "ParHDE layout") || !strings.Contains(body, "/layout.png") {
		t.Fatalf("unexpected page: %.200s", body)
	}
}

func TestLayoutPNG(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/layout.png")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		t.Fatalf("content type %q", ct)
	}
	img, err := png.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 700 {
		t.Fatalf("image width %d", img.Bounds().Dx())
	}
}

func TestZoomPNGAndValidation(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/zoom.png?v=100&hops=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, err := png.Decode(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"v=-1", "v=99999999", "hops=0", "hops=200", "v=abc"} {
		r, err := http.Get(ts.URL + "/zoom.png?" + bad)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", bad, r.StatusCode)
		}
	}
}

func TestZoomCaching(t *testing.T) {
	g := gen.Grid2D(15, 15)
	s, err := New(g, core.Options{Subspace: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/zoom.png?v=10&hops=4")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if !s.cache.Contains("g:default:1:1:zoom:10:4") {
		t.Fatal("zoom render not cached")
	}
	if got := s.zoomRenders.Value(); got != 1 {
		t.Fatalf("zoom layouts = %d, want 1 (second request must hit the cache)", got)
	}
}

func TestStatsJSON(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"vertices", "edges", "hallRatio", "layoutSeconds"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("stats missing %q: %v", key, stats)
		}
	}
}

func TestUnknownPath404(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestLayoutSVG(t *testing.T) {
	ts := newTestServer(t)
	for i := 0; i < 2; i++ { // second hit exercises the cache
		resp, err := http.Get(ts.URL + "/layout.svg")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
			t.Fatalf("content type %q", ct)
		}
		buf := make([]byte, 64)
		n, _ := resp.Body.Read(buf)
		resp.Body.Close()
		if !strings.HasPrefix(string(buf[:n]), "<svg") {
			t.Fatalf("not svg: %q", string(buf[:n]))
		}
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d, want 200", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "ok\n" {
		t.Fatalf("healthz body %q", b)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// Generate some traffic first so counters exist. Drain each body to
	// EOF: that orders the middleware's post-handler accounting before
	// the /metrics scrape below.
	for _, p := range []string{"/layout.png", "/zoom.png?v=5&hops=3", "/stats"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("path %s: status %d", p, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	body := string(b)
	for _, want := range []string{
		`http_requests_total{route="/zoom.png",code="200"} 1`,
		`http_request_duration_seconds_bucket{route="/stats",le="+Inf"} 1`,
		"render_cache_hits_total",
		"render_cache_misses_total",
		"render_cache_evictions_total",
		"render_cache_bytes",
		`parhde_phase_seconds{phase="bfs_traversal"}`,
		`parhde_phase_seconds{phase="total"}`,
		"zoom_layouts_total 1",
		`bfs_steps_total{direction="topdown"}`,
		`bfs_steps_total{direction="bottomup"}`,
		"bfs_scanned_edges_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestBFSDirectionCountersRecorded pins the startup layout's traversal
// stats flowing into the direction counters: a cold run must record
// top-down steps and scanned edges (bottom-up may legitimately be zero
// on a small high-diameter graph).
func TestBFSDirectionCountersRecorded(t *testing.T) {
	s, _ := newTestServerPair(t, Config{})
	if got := s.bfsTopDown.Value(); got <= 0 {
		t.Fatalf("bfs topdown steps = %d, want > 0", got)
	}
	if got := s.bfsScannedEdges.Value(); got <= 0 {
		t.Fatalf("bfs scanned edges = %d, want > 0", got)
	}
}

// TestSingleflightColdKey is the acceptance check for the thundering-herd
// bug: 50 concurrent requests for the same uncached zoom key must trigger
// exactly one core.Zoom layout, with every request getting the same bytes.
func TestSingleflightColdKey(t *testing.T) {
	s, ts := newTestServerPair(t, Config{})
	const clients = 50
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/zoom.png?v=200&hops=6")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	if got := s.zoomRenders.Value(); got != 1 {
		t.Fatalf("cold key rendered %d times across %d concurrent requests, want exactly 1", got, clients)
	}
	for i := 1; i < clients; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("request %d got different bytes than request 0", i)
		}
	}
}

// TestConcurrentMixedTraffic hammers the full route set from ≥50
// goroutines (run under -race in CI) and checks the cache stays within
// its byte budget and per-key renders stay deduplicated.
func TestConcurrentMixedTraffic(t *testing.T) {
	const budget = int64(1 << 20)
	s, ts := newTestServerPair(t, Config{CacheBytes: budget})
	paths := []string{
		"/zoom.png?v=10&hops=3", "/zoom.png?v=20&hops=3", "/zoom.png?v=30&hops=4",
		"/layout.svg", "/layout.png", "/stats", "/", "/healthz", "/metrics",
	}
	const clients = 60
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				resp, err := http.Get(ts.URL + paths[(i+j)%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("path %s: status %d", paths[(i+j)%len(paths)], resp.StatusCode)
				}
			}
		}(i)
	}
	wg.Wait()
	if got := s.cache.Bytes(); got > budget {
		t.Fatalf("cache holds %d bytes, budget %d", got, budget)
	}
	// Three zoom keys were requested many times each: exactly three layouts.
	if got := s.zoomRenders.Value(); got != 3 {
		t.Fatalf("zoom layouts = %d, want 3 (one per distinct key)", got)
	}
	if got := s.renderErrors.Value(); got != 0 {
		t.Fatalf("render errors = %d", got)
	}
}

// TestCacheEvictionUnderPressure walks many distinct zoom keys with a
// tiny budget: the cache must stay bounded and evict.
func TestCacheEvictionUnderPressure(t *testing.T) {
	const budget = int64(64 << 10)
	s, ts := newTestServerPair(t, Config{CacheBytes: budget})
	var total int64
	const keys = 24
	for v := 0; v < keys; v++ {
		resp, err := http.Get(fmt.Sprintf("%s/zoom.png?v=%d&hops=2", ts.URL, v*30))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("v=%d: status %d", v*30, resp.StatusCode)
		}
		total += int64(len(b))
	}
	if got := s.cache.Bytes(); got > budget {
		t.Fatalf("cache holds %d bytes, budget %d", got, budget)
	}
	if total > budget {
		ev := s.reg.Counter("render_cache_evictions_total").Value()
		if ev == 0 {
			t.Fatalf("rendered %d bytes against a %d budget but evicted nothing (cache len %d)",
				total, budget, s.cache.Len())
		}
	}
}

func TestPprofGating(t *testing.T) {
	_, off := newTestServerPair(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: status %d, want 404", resp.StatusCode)
	}
	_, on := newTestServerPair(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof enabled: status %d, want 200", resp.StatusCode)
	}
}
