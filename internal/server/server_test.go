package server

import (
	"encoding/json"
	"image/png"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	g := gen.PlateWithHoles(30, 30)
	s, err := New(g, core.Options{Subspace: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestIndexPage(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()
	if !strings.Contains(body, "ParHDE layout") || !strings.Contains(body, "/layout.png") {
		t.Fatalf("unexpected page: %.200s", body)
	}
}

func TestLayoutPNG(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/layout.png")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		t.Fatalf("content type %q", ct)
	}
	img, err := png.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 700 {
		t.Fatalf("image width %d", img.Bounds().Dx())
	}
}

func TestZoomPNGAndValidation(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/zoom.png?v=100&hops=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, err := png.Decode(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"v=-1", "v=99999999", "hops=0", "hops=200", "v=abc"} {
		r, err := http.Get(ts.URL + "/zoom.png?" + bad)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", bad, r.StatusCode)
		}
	}
}

func TestZoomCaching(t *testing.T) {
	g := gen.Grid2D(15, 15)
	s, err := New(g, core.Options{Subspace: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/zoom.png?v=10&hops=4")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	s.mu.Lock()
	_, cached := s.cache["zoom:10:4"]
	s.mu.Unlock()
	if !cached {
		t.Fatal("zoom render not cached")
	}
}

func TestStatsJSON(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"vertices", "edges", "hallRatio"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("stats missing %q: %v", key, stats)
		}
	}
}

func TestUnknownPath404(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestLayoutSVG(t *testing.T) {
	ts := newTestServer(t)
	for i := 0; i < 2; i++ { // second hit exercises the cache
		resp, err := http.Get(ts.URL + "/layout.svg")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
			t.Fatalf("content type %q", ct)
		}
		buf := make([]byte, 64)
		n, _ := resp.Body.Read(buf)
		resp.Body.Close()
		if !strings.HasPrefix(string(buf[:n]), "<svg") {
			t.Fatalf("not svg: %q", string(buf[:n]))
		}
	}
}
