package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestLRU(max int64) (*byteLRU, *obs.Counter, *obs.Counter, *obs.Counter) {
	h, m, e := &obs.Counter{}, &obs.Counter{}, &obs.Counter{}
	return newByteLRU(max, h, m, e), h, m, e
}

func TestLRUBasic(t *testing.T) {
	c, hits, misses, _ := newTestLRU(100)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put("a", []byte("aaaa"))
	v, ok := c.Get("a")
	if !ok || string(v) != "aaaa" {
		t.Fatalf("got %q ok=%v", v, ok)
	}
	if hits.Value() != 1 || misses.Value() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits.Value(), misses.Value())
	}
	if c.Bytes() != 4 || c.Len() != 1 {
		t.Fatalf("bytes=%d len=%d", c.Bytes(), c.Len())
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c, _, _, ev := newTestLRU(10)
	c.Put("a", []byte("aaaa")) // 4 bytes
	c.Put("b", []byte("bbbb")) // 8 bytes total
	c.Get("a")                 // a is now most recent
	c.Put("c", []byte("cccc")) // 12 > 10: evict b (LRU), not a
	if c.Contains("b") {
		t.Fatal("b should have been evicted")
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Fatal("a and c should survive")
	}
	if ev.Value() != 1 {
		t.Fatalf("evictions=%d, want 1", ev.Value())
	}
	if c.Bytes() != 8 {
		t.Fatalf("bytes=%d, want 8", c.Bytes())
	}
}

func TestLRUReplaceAdjustsSize(t *testing.T) {
	c, _, _, _ := newTestLRU(100)
	c.Put("a", []byte("aaaa"))
	c.Put("a", []byte("aaaaaaaa"))
	if c.Bytes() != 8 || c.Len() != 1 {
		t.Fatalf("bytes=%d len=%d after replace", c.Bytes(), c.Len())
	}
}

func TestLRUOversizedValueNotCached(t *testing.T) {
	c, _, _, _ := newTestLRU(10)
	c.Put("small", []byte("ssss"))
	c.Put("big", make([]byte, 11))
	if c.Contains("big") {
		t.Fatal("value larger than the whole budget must not be cached")
	}
	if !c.Contains("small") {
		t.Fatal("oversized insert must not wipe existing entries")
	}
	// Replacing an existing key with an oversized value removes the stale entry.
	c.Put("small", make([]byte, 11))
	if c.Contains("small") {
		t.Fatal("stale entry must be dropped when the new value is oversized")
	}
	if c.Bytes() != 0 {
		t.Fatalf("bytes=%d, want 0", c.Bytes())
	}
}

func TestLRUUnboundedWhenNegative(t *testing.T) {
	c, _, _, ev := newTestLRU(-1)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprint(i), make([]byte, 1000))
	}
	if c.Len() != 100 || ev.Value() != 0 {
		t.Fatalf("len=%d evictions=%d, want 100/0", c.Len(), ev.Value())
	}
}

func TestLRUConcurrent(t *testing.T) {
	c, _, _, _ := newTestLRU(1 << 14)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprint(i % 37)
				if v, ok := c.Get(key); ok && len(v) != 100 {
					t.Errorf("corrupt value length %d", len(v))
				}
				c.Put(key, make([]byte, 100))
			}
		}(w)
	}
	wg.Wait()
	if c.Bytes() > 1<<14 {
		t.Fatalf("bytes=%d over budget", c.Bytes())
	}
}

func TestFlightGroupDedup(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	var calls int
	var mu sync.Mutex

	var wg sync.WaitGroup
	results := make([]string, 20)
	// Leader occupies the flight, then 19 joiners pile on.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, _ := g.Do("k", func() ([]byte, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			close(started)
			<-release
			return []byte("result"), nil
		})
		results[0] = string(v)
	}()
	<-started
	for i := 1; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, _ := g.Do("k", func() ([]byte, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				return []byte("dup"), nil
			})
			if !shared {
				t.Error("joiner should report shared")
			}
			results[i] = string(v)
		}(i)
	}
	// Only release the leader once every joiner is provably attached to
	// the in-flight call; otherwise the flight could complete first and
	// late joiners would start their own.
	for g.joiners("k") != 19 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	for i, r := range results {
		if r != "result" {
			t.Fatalf("result[%d] = %q", i, r)
		}
	}
}
