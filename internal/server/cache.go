package server

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// byteLRU is a byte-budget LRU cache for rendered views. Zoom keys span
// up to n × 100 (vertex × hops) distinct renders, so the cache must be
// bounded or a crawler walking the key space OOMs the server; when the
// budget is exceeded the least-recently-used entries are evicted. A
// maxBytes <= 0 disables the bound (callers are expected to apply a sane
// default first). Values are treated as immutable after Put.
type byteLRU struct {
	mu    sync.Mutex
	max   int64
	size  int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions *obs.Counter
}

type lruEntry struct {
	key string
	val []byte
}

// newByteLRU returns a cache with the given byte budget. The counters
// must be non-nil (pass fresh obs.Counter values when not exporting).
func newByteLRU(maxBytes int64, hits, misses, evictions *obs.Counter) *byteLRU {
	return &byteLRU{
		max:       maxBytes,
		ll:        list.New(),
		items:     map[string]*list.Element{},
		hits:      hits,
		misses:    misses,
		evictions: evictions,
	}
}

// Get returns the cached value for key and marks it most-recently-used.
func (c *byteLRU) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(e)
	c.hits.Inc()
	return e.Value.(*lruEntry).val, true
}

// Put inserts or replaces key and evicts LRU entries until the cache fits
// the budget again. A value larger than the whole budget is not cached at
// all (it would only evict everything else for a single entry).
func (c *byteLRU) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 && int64(len(val)) > c.max {
		if e, ok := c.items[key]; ok {
			c.remove(e)
		}
		return
	}
	if e, ok := c.items[key]; ok {
		ent := e.Value.(*lruEntry)
		c.size += int64(len(val)) - int64(len(ent.val))
		ent.val = val
		c.ll.MoveToFront(e)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
		c.size += int64(len(val))
	}
	for c.max > 0 && c.size > c.max {
		back := c.ll.Back()
		if back == nil || back.Value.(*lruEntry).key == key {
			break // never evict the entry just inserted
		}
		c.remove(back)
		c.evictions.Inc()
	}
}

// remove deletes e from the cache. Caller holds c.mu.
func (c *byteLRU) remove(e *list.Element) {
	ent := e.Value.(*lruEntry)
	c.ll.Remove(e)
	delete(c.items, ent.key)
	c.size -= int64(len(ent.val))
}

// Bytes returns the cached payload size.
func (c *byteLRU) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Len returns the number of cached entries.
func (c *byteLRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// getQuiet is Get without hit/miss accounting, for the singleflight
// double-check (the caller's original Get already counted the miss).
func (c *byteLRU) getQuiet(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry).val, true
}

// Contains reports whether key is cached without touching recency or the
// hit/miss counters (used by tests).
func (c *byteLRU) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}
