package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
)

// Live coordinate streaming: every layout install diffs the new view
// against the one it replaces and fans a versioned delta out to the
// graph's SSE subscribers. Versions are the per-graph view generations,
// so a client sees a strictly increasing sequence and can detect dropped
// frames (a slow subscriber whose buffer fills skips events rather than
// stalling the install path; the next delta's version gap tells it to
// resynchronize, e.g. by reconnecting for a fresh snapshot).

// streamBuffer is each subscriber's event buffer; a subscriber further
// than this many events behind starts losing frames.
const streamBuffer = 32

// streamEvent is the SSE payload of both event kinds. A "snapshot"
// carries every vertex (Full=true, Changed=nil); a "delta" carries the
// rows of Changed only. Coords is row-per-vertex, Dims values each.
type streamEvent struct {
	Graph   string      `json:"graph"`
	Version int         `json:"version"`
	Dims    int         `json:"dims"`
	N       int         `json:"n"`
	Full    bool        `json:"full"`
	Changed []int32     `json:"changed,omitempty"`
	Coords  [][]float64 `json:"coords"`
}

// subscribe registers a new SSE subscriber for the named graph and
// returns its event channel plus the matching unsubscribe.
func (s *Server) subscribe(name string) (chan []byte, func()) {
	ch := make(chan []byte, streamBuffer)
	s.streamMu.Lock()
	if s.streams[name] == nil {
		s.streams[name] = map[chan []byte]struct{}{}
	}
	s.streams[name][ch] = struct{}{}
	s.streamMu.Unlock()
	s.streamSubs.Add(1)
	return ch, func() {
		s.streamMu.Lock()
		if subs, ok := s.streams[name]; ok {
			if _, live := subs[ch]; live {
				delete(subs, ch)
				if len(subs) == 0 {
					delete(s.streams, name)
				}
				s.streamSubs.Add(-1)
			}
		}
		s.streamMu.Unlock()
	}
}

// broadcast diffs old against the just-installed view and pushes one
// delta event to every subscriber of the graph. Runs synchronously on
// the install path (a send is one non-blocking channel op per
// subscriber); the observed latency is exported as
// stream_broadcast_seconds.
func (s *Server) broadcast(old, nv *view) {
	s.streamMu.Lock()
	subs := s.streams[nv.name]
	if len(subs) == 0 {
		s.streamMu.Unlock()
		return
	}
	// Snapshot the subscriber set so the (cheap) diff + marshal below
	// doesn't hold the lock against subscribe/unsubscribe.
	targets := make([]chan []byte, 0, len(subs))
	for ch := range subs {
		targets = append(targets, ch)
	}
	s.streamMu.Unlock()

	start := time.Now()
	ev := diffViews(old, nv)
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	for _, ch := range targets {
		select {
		case ch <- b:
		default: // slow subscriber: drop the frame, never block an install
		}
	}
	s.broadcastLatency.ObserveDuration(time.Since(start))
}

// diffViews builds the event describing nv relative to old: the changed
// vertex rows when the views are comparable and the change is sparse, a
// full snapshot otherwise.
func diffViews(old, nv *view) streamEvent {
	n, p := nv.layout.NumVertices(), nv.layout.Dims()
	ev := streamEvent{Graph: nv.name, Version: nv.gen, Dims: p, N: n}
	if old != nil && old.layout.Dims() == p && old.layout.NumVertices() <= n {
		oldN := old.layout.NumVertices()
		var changed []int32
		for i := 0; i < n; i++ {
			if i >= oldN {
				changed = append(changed, int32(i))
				continue
			}
			for j := 0; j < p; j++ {
				if nv.layout.Coords.Col(j)[i] != old.layout.Coords.Col(j)[i] {
					changed = append(changed, int32(i))
					break
				}
			}
		}
		if len(changed) <= n/2 {
			ev.Changed = changed
			ev.Coords = coordRows(nv.layout, changed)
			return ev
		}
	}
	ev.Full = true
	ev.Coords = coordRows(nv.layout, nil)
	return ev
}

// coordRows extracts the listed vertex rows (all rows when idx is nil).
func coordRows(l *core.Layout, idx []int32) [][]float64 {
	p := l.Dims()
	if idx == nil {
		n := l.NumVertices()
		rows := make([][]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, p)
			for j := 0; j < p; j++ {
				row[j] = l.Coords.Col(j)[i]
			}
			rows[i] = row
		}
		return rows
	}
	rows := make([][]float64, len(idx))
	for k, i := range idx {
		row := make([]float64, p)
		for j := 0; j < p; j++ {
			row[j] = l.Coords.Col(j)[int(i)]
		}
		rows[k] = row
	}
	return rows
}

// handleGraphStream is GET /graphs/{name}/stream: a Server-Sent-Events
// feed opening with a "snapshot" of the current layout and following
// with one "delta" per install. The handler returns when the client
// disconnects or the server shuts down.
func (s *Server) handleGraphStream(w http.ResponseWriter, r *http.Request) {
	v, ok := s.lookupView(w, r)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	// Subscribe before snapshotting: an install racing with the snapshot
	// delivers a delta whose version is ≤ the snapshot's, which the
	// client ignores; subscribing after could lose an install entirely.
	ch, unsubscribe := s.subscribe(v.name)
	defer unsubscribe()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")

	snap := streamEvent{
		Graph: v.name, Version: v.gen,
		Dims: v.layout.Dims(), N: v.layout.NumVertices(),
		Full: true, Coords: coordRows(v.layout, nil),
	}
	if err := writeSSE(w, "snapshot", snap); err != nil {
		return
	}
	flusher.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case b := <-ch:
			if _, err := fmt.Fprintf(w, "event: delta\ndata: %s\n\n", b); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// writeSSE emits one named SSE event with a JSON payload.
func writeSSE(w http.ResponseWriter, event string, v interface{}) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	return err
}
