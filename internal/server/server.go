// Package server implements the §4.5.2 vision of ParHDE's zoom feature:
// "this would be useful for future browser-based interactive graph
// visualization". It serves laid-out graphs and renders zoomed k-hop
// neighborhood layouts on demand — feasible interactively because ParHDE
// lays out million-edge graphs in real time.
//
// The serving layer is built for sustained traffic: every rendered view
// goes through a singleflight + byte-budget LRU cache, expensive
// core.Zoom layouts run under a concurrency limit, and an internal/obs
// registry exports request counters, latency histograms, and cache
// behavior on /metrics.
//
// Since the async-jobs rework, one server instance fronts a whole
// catalog of graphs instead of the single graph handed to New: graphs
// are uploaded or loaded by name (internal/catalog), and layouts run as
// queued, cancellable jobs on a bounded worker pool (internal/jobs)
// rather than synchronously inside a request. A completed job installs
// its layout as the graph's current view, which the per-graph render
// endpoints then serve. The original single-graph startup mode is the
// degenerate case: a catalog with one pinned entry named "default".
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/render"
)

// DefaultCacheBytes is the render-cache budget when Config.CacheBytes is
// zero: enough for a few hundred typical 700-px renders without letting a
// key-space crawl grow the heap unboundedly.
const DefaultCacheBytes int64 = 64 << 20

// DefaultMaxUploadBytes bounds one POST /graphs body.
const DefaultMaxUploadBytes int64 = 256 << 20

// DefaultGraph is the catalog name of the graph handed to New at startup.
const DefaultGraph = "default"

// Config tunes the serving layer. The zero value gets sane defaults.
type Config struct {
	// CacheBytes is the render-cache budget. 0 means DefaultCacheBytes;
	// negative disables the bound (not recommended for public traffic).
	CacheBytes int64
	// MaxConcurrentRenders caps concurrently executing expensive renders
	// (distinct cache keys; same-key requests are deduplicated before the
	// limit applies). 0 means GOMAXPROCS.
	MaxConcurrentRenders int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// AccessLog, when non-nil, receives one structured line per request.
	AccessLog *log.Logger

	// CatalogBytes is the graph-catalog byte budget (0 = the catalog
	// package default, negative = unbounded).
	CatalogBytes int64
	// MaxUploadBytes bounds one graph upload body (0 = DefaultMaxUploadBytes).
	MaxUploadBytes int64
	// Workers sizes the layout job worker pool (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the job queue; submissions beyond it get HTTP 429
	// (0 = the jobs package default).
	QueueDepth int
	// JobsTTL is how long finished jobs stay queryable (0 = the jobs
	// package default, negative = forever).
	JobsTTL time.Duration
	// MaxResults caps retained finished jobs (0 = the jobs package default).
	MaxResults int
	// DataDir, when non-empty, persists completed job results to disk.
	DataDir string
	// RebuildThreshold is the dirty-edge count at which a mutated graph's
	// CSR is rebuilt inside a PATCH batch (0 = the dyngraph package
	// default; negative = rebuild only on the per-PATCH refresh).
	RebuildThreshold int
	// WorkerID names this process in a sharded deployment: job ids get it
	// as a prefix (so the router can route them back), responses carry it
	// in an X-Hdeserve-Worker header, and GET /shardz reports it. Empty
	// (single-process mode) disables all three.
	WorkerID string
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.MaxConcurrentRenders <= 0 {
		c.MaxConcurrentRenders = runtime.GOMAXPROCS(0)
	}
	if c.MaxUploadBytes == 0 {
		c.MaxUploadBytes = DefaultMaxUploadBytes
	}
	return c
}

// view is one graph's current layout, immutable once installed; a new
// layout for the same graph replaces the whole view under s.mu. gen
// namespaces the render-cache keys so stale renders of a replaced layout
// age out of the LRU instead of being served.
type view struct {
	name   string
	gen    int
	g      *graph.CSR
	layout *core.Layout
	report *core.Report // nil for algorithms without a phase report
	opt    core.Options // zoom layouts reuse the view's layout options
	stats  []byte       // per-graph /stats body, computed at install
}

// cacheKey namespaces a render kind under the view's graph, the view
// generation, and the catalog entry's content generation. The catalog
// generation is read at request time, so any mutation path that bumps it
// (PATCH, Touch, Refresh) orphans every cached render of the old graph
// immediately — even before a new layout installs.
func (s *Server) cacheKey(v *view, kind string) string {
	catGen, _ := s.cat.Generation(v.name)
	return fmt.Sprintf("g:%s:%d:%d:%s", v.name, v.gen, catGen, kind)
}

// Server fronts a catalog of graphs: it renders installed layouts and
// runs new ones as async jobs.
type Server struct {
	cfg Config
	cat *catalog.Catalog
	eng *jobs.Engine

	mu    sync.RWMutex
	views map[string]*view
	gens  map[string]int
	// pending counts applied-but-not-yet-installed mutations per graph;
	// jobDelta remembers each refinement job's share of it so a completed
	// install retires exactly the delta it absorbed. Both under mu.
	pending  map[string]int64
	jobDelta map[string]int64

	cache  *byteLRU
	flight flightGroup
	sem    chan struct{} // expensive-render concurrency limit

	// streams holds the per-graph SSE subscriber sets (see stream.go).
	streamMu sync.Mutex
	streams  map[string]map[chan []byte]struct{}
	done     chan struct{} // closed by Close; unblocks SSE handlers
	closing  sync.Once

	reg              *obs.Registry
	zoomRenders      *obs.Counter // core.Zoom layouts actually executed
	viewRenders      *obs.Counter // all renders actually executed (any kind)
	renderErrors     *obs.Counter
	mutationsApplied *obs.Counter   // graph mutations applied via PATCH
	warmLayouts      *obs.Counter   // installs that took the warm-start path
	coldLayouts      *obs.Counter   // installs that ran the full pipeline
	refineSweeps     *obs.Counter   // cumulative warm-refinement sweeps
	bfsTopDown       *obs.Counter   // BFS-phase levels run top-down
	bfsBottomUp      *obs.Counter   // BFS-phase levels run bottom-up
	bfsScannedEdges  *obs.Counter   // adjacency entries BFS actually examined
	streamSubs       *obs.Gauge     // currently connected SSE subscribers
	broadcastLatency *obs.Histogram // install→fan-out delta latency

	ready atomic.Bool
}

// New computes the global layout of g and returns a ready-to-serve
// Server with the default Config.
func New(g *graph.CSR, opt core.Options) (*Server, error) {
	return NewWithConfig(g, opt, Config{})
}

// NewWithConfig computes the global layout of g, registers it as the
// pinned catalog entry "default", and returns a ready-to-serve Server
// with the job engine running. The layout-quality sweep for /stats runs
// once here rather than per request (core.Evaluate is O(m)).
func NewWithConfig(g *graph.CSR, opt core.Options, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	layout, rep, err := core.ParHDE(g, opt)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:      cfg,
		cat:      catalog.New(cfg.CatalogBytes),
		views:    map[string]*view{},
		gens:     map[string]int{},
		pending:  map[string]int64{},
		jobDelta: map[string]int64{},
		streams:  map[string]map[chan []byte]struct{}{},
		done:     make(chan struct{}),
		sem:      make(chan struct{}, cfg.MaxConcurrentRenders),
		reg:      reg,
		cache: newByteLRU(cfg.CacheBytes,
			reg.Counter("render_cache_hits_total"),
			reg.Counter("render_cache_misses_total"),
			reg.Counter("render_cache_evictions_total")),
		zoomRenders:      reg.Counter("zoom_layouts_total"),
		viewRenders:      reg.Counter("view_renders_total"),
		renderErrors:     reg.Counter("render_errors_total"),
		mutationsApplied: reg.Counter("graph_mutations_total"),
		warmLayouts:      reg.Counter(`layouts_installed_total{mode="warm"}`),
		coldLayouts:      reg.Counter(`layouts_installed_total{mode="cold"}`),
		refineSweeps:     reg.Counter("refine_sweeps_total"),
		bfsTopDown:       reg.Counter(`bfs_steps_total{direction="topdown"}`),
		bfsBottomUp:      reg.Counter(`bfs_steps_total{direction="bottomup"}`),
		bfsScannedEdges:  reg.Counter("bfs_scanned_edges_total"),
		streamSubs:       reg.Gauge("stream_subscribers"),
		broadcastLatency: reg.Histogram("stream_broadcast_seconds"),
	}
	reg.GaugeFunc("render_cache_bytes", func() float64 { return float64(s.cache.Bytes()) })
	reg.GaugeFunc("render_cache_entries", func() float64 { return float64(s.cache.Len()) })
	reg.GaugeFunc("catalog_graphs", func() float64 { return float64(s.cat.Len()) })
	reg.GaugeFunc("catalog_bytes", func() float64 { return float64(s.cat.Bytes()) })
	for _, p := range rep.Breakdown.Phases() {
		d := p.D
		reg.GaugeFunc(fmt.Sprintf("parhde_phase_seconds{phase=%q}", p.Name),
			func() float64 { return d.Seconds() })
	}

	if err := s.cat.AddPinned(DefaultGraph, g, "startup"); err != nil {
		return nil, err
	}
	s.recordBFS(rep)
	s.install(DefaultGraph, g, layout, rep, opt, core.Evaluate(g, layout), rep.Breakdown.Total)

	idPrefix := ""
	if cfg.WorkerID != "" {
		idPrefix = cfg.WorkerID + "-"
	}
	s.eng = jobs.New(s.cat, jobs.Config{
		Workers:    cfg.Workers,
		IDPrefix:   idPrefix,
		QueueDepth: cfg.QueueDepth,
		ResultTTL:  cfg.JobsTTL,
		MaxResults: cfg.MaxResults,
		DataDir:    cfg.DataDir,
		Metrics:    reg,
		Logger:     cfg.AccessLog,
		OnDone:     s.onJobDone,
	})
	if cfg.DataDir != "" {
		s.recoverState()
	}
	s.ready.Store(true)
	return s, nil
}

// Close shuts down the job engine — pending and running jobs are
// cancelled and the worker pool drains — and disconnects every SSE
// subscriber. The render endpoints keep working on the installed views.
func (s *Server) Close() {
	s.closing.Do(func() { close(s.done) })
	s.eng.Close()
}

// onJobDone installs a completed job's layout as its graph's current
// view (runs on the worker goroutine) and settles the mutation-delta
// bookkeeping the job was submitted with.
func (s *Server) onJobDone(j *jobs.Job) {
	done := j.State() == jobs.StateDone
	s.mu.Lock()
	delta, tracked := s.jobDelta[j.ID()]
	delete(s.jobDelta, j.ID())
	if tracked && done {
		// The install below absorbs this job's share of the pending
		// mutations; later PATCHes' deltas stay pending.
		if s.pending[j.Graph()] -= delta; s.pending[j.Graph()] <= 0 {
			delete(s.pending, j.Graph())
		}
	}
	s.mu.Unlock()
	if !done {
		return
	}
	res := j.Result()
	if res == nil || res.Layout == nil {
		return
	}
	if rep := res.Report; rep != nil {
		if rep.Warm {
			s.warmLayouts.Inc()
			s.refineSweeps.Add(int64(rep.RefineSweeps))
		} else {
			s.coldLayouts.Inc()
		}
		s.recordBFS(rep)
	}
	elapsed := res.Elapsed
	if res.Report != nil {
		elapsed = res.Report.Breakdown.Total
	}
	s.install(j.Graph(), j.Input(), res.Layout, res.Report, j.Config().Layout, res.Quality, elapsed)
}

// recordBFS folds a cold run's traversal-direction split into the
// BFS counters (warm runs skip the BFS phase, so their totals are zero
// and the call is a no-op).
func (s *Server) recordBFS(rep *core.Report) {
	t := rep.BFSTotals()
	s.bfsTopDown.Add(int64(t.TopDownSteps))
	s.bfsBottomUp.Add(int64(t.BottomUpSteps))
	s.bfsScannedEdges.Add(t.ScannedEdges)
}

// install makes (layout, report) the current view of the named graph and
// precomputes its /stats body.
func (s *Server) install(name string, g *graph.CSR, layout *core.Layout, rep *core.Report,
	opt core.Options, q core.Quality, layoutTime time.Duration) {
	stats, err := json.Marshal(map[string]interface{}{
		"graph":          name,
		"vertices":       g.NumV,
		"edges":          g.NumEdges(),
		"maxDegree":      g.MaxDegree(),
		"hallRatio":      q.HallRatio,
		"meanEdgeLength": q.MeanEdgeLength,
		"edgeLengthCV":   q.EdgeLengthCV,
		"layoutSeconds":  layoutTime.Seconds(),
	})
	if err != nil {
		stats = []byte("{}")
	}
	s.mu.Lock()
	old := s.views[name]
	s.gens[name]++
	nv := &view{
		name:   name,
		gen:    s.gens[name],
		g:      g,
		layout: layout,
		report: rep,
		opt:    opt,
		stats:  append(stats, '\n'),
	}
	s.views[name] = nv
	s.mu.Unlock()
	// Fan the coordinate delta out to the graph's stream subscribers
	// (no-op without any). Outside the view lock: a slow marshal must not
	// block readers, and sends never block regardless.
	s.broadcast(old, nv)
}

// viewOf returns the named graph's current view. The boolean pair
// distinguishes "graph unknown" (404) from "known but not laid out yet"
// (409).
func (s *Server) viewOf(name string) (v *view, known, laidOut bool) {
	s.mu.RLock()
	v, laidOut = s.views[name]
	s.mu.RUnlock()
	if laidOut {
		return v, true, true
	}
	_, known = s.cat.Get(name)
	return nil, known, false
}

// Report returns the startup layout run's per-phase report.
func (s *Server) Report() *core.Report {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v, ok := s.views[DefaultGraph]; ok {
		return v.report
	}
	return nil
}

// Metrics returns the server's metric registry (also served on /metrics).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Catalog returns the server's graph catalog.
func (s *Server) Catalog() *catalog.Catalog { return s.cat }

// Jobs returns the server's layout job engine.
func (s *Server) Jobs() *jobs.Engine { return s.eng }

// routes are the label values the access-log middleware may emit; every
// other path collapses into a prefix family or "other" to bound metric
// cardinality.
var routes = map[string]bool{
	"/": true, "/layout.png": true, "/layout.svg": true, "/zoom.png": true,
	"/stats": true, "/healthz": true, "/shardz": true, "/metrics": true,
	"/graphs": true, "/jobs": true,
}

func routeOf(r *http.Request) string {
	if routes[r.URL.Path] {
		return r.URL.Path
	}
	switch {
	case strings.HasPrefix(r.URL.Path, "/debug/pprof/"):
		return "/debug/pprof/"
	case strings.HasPrefix(r.URL.Path, "/graphs/"):
		return "/graphs/"
	case strings.HasPrefix(r.URL.Path, "/jobs/"):
		return "/jobs/"
	}
	return "other"
}

// apiRoutes is the authoritative mux registration table: every pattern
// the server handles, in the order API.md documents them. Handler builds
// the mux from it, and the docs cross-check test holds API.md to exactly
// this list — a route added here without documentation (or vice versa)
// fails CI.
var apiRoutes = []struct {
	pattern string
	fn      func(*Server, http.ResponseWriter, *http.Request)
}{
	{"/", (*Server).handleIndex},
	{"/layout.png", (*Server).handleLayout},
	{"/layout.svg", (*Server).handleLayoutSVG},
	{"/zoom.png", (*Server).handleZoom},
	{"/stats", (*Server).handleStats},
	{"/healthz", (*Server).handleHealthz},
	{"GET /shardz", (*Server).handleShardz},
	{"GET /graphs", (*Server).handleGraphsList},
	{"POST /graphs", (*Server).handleGraphUpload},
	{"DELETE /graphs/{name}", (*Server).handleGraphDelete},
	{"GET /graphs/{name}/layout.png", (*Server).handleGraphLayoutPNG},
	{"GET /graphs/{name}/layout.svg", (*Server).handleGraphLayoutSVG},
	{"GET /graphs/{name}/zoom.png", (*Server).handleGraphZoom},
	{"GET /graphs/{name}/stats", (*Server).handleGraphStats},
	{"PATCH /graphs/{name}", (*Server).handleGraphMutate},
	{"GET /graphs/{name}/stream", (*Server).handleGraphStream},
	{"POST /jobs", (*Server).handleJobSubmit},
	{"GET /jobs", (*Server).handleJobsList},
	{"GET /jobs/{id}", (*Server).handleJobGet},
	{"DELETE /jobs/{id}", (*Server).handleJobCancel},
}

// RoutePatterns returns every mux pattern the server registers (the
// apiRoutes table plus /metrics, which mounts the registry's own
// handler). The docs cross-check test and the router reuse it.
func RoutePatterns() []string {
	out := make([]string, 0, len(apiRoutes)+1)
	for _, rt := range apiRoutes {
		out = append(out, rt.pattern)
	}
	return append(out, "/metrics")
}

// Handler returns the instrumented HTTP mux: the single-graph viewer
// endpoints (operating on the "default" graph), the catalog/jobs REST
// API, /healthz, /shardz, /metrics, and (when enabled) /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range apiRoutes {
		fn := rt.fn
		mux.HandleFunc(rt.pattern, func(w http.ResponseWriter, r *http.Request) { fn(s, w, r) })
	}
	mux.Handle("/metrics", s.reg.Handler())

	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	var h http.Handler = mux
	if s.cfg.WorkerID != "" {
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("X-Hdeserve-Worker", s.cfg.WorkerID)
			inner.ServeHTTP(w, r)
		})
	}
	return obs.Middleware(s.reg, s.cfg.AccessLog, routeOf, h)
}

// handleShardz reports this process's slice of the sharded deployment:
// its worker id, the graphs resident in its catalog, and readiness. The
// router polls it as the combined health + identity probe; operators can
// hit it directly for a shard inventory.
func (s *Server) handleShardz(w http.ResponseWriter, r *http.Request) {
	infos := s.cat.List()
	names := make([]string, len(infos))
	for i, in := range infos {
		names[i] = in.Name
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"worker":       s.cfg.WorkerID,
		"graphs":       names,
		"catalogBytes": s.cat.Bytes(),
		"ready":        s.ready.Load(),
	})
}

var page = template.Must(template.New("index").Parse(`<!doctype html>
<html><head><title>ParHDE interactive layout</title></head>
<body style="font-family:sans-serif">
<h1>ParHDE layout — n={{.N}}, m={{.M}}</h1>
<p>Global structure below. Zoom into a vertex's neighborhood:</p>
<form action="/" method="get">
  vertex <input name="v" value="{{.V}}" size="9">
  hops <input name="hops" value="{{.Hops}}" size="3">
  <input type="submit" value="zoom">
</form>
{{if .ShowZoom}}<h2>{{.Hops}}-hop neighborhood of vertex {{.V}}</h2>
<img src="/zoom.png?v={{.V}}&hops={{.Hops}}" width="45%">{{end}}
<h2>Global layout</h2>
<img src="/layout.png" width="45%">
</body></html>`))

// defaultView returns the "default" graph's view (always present: it is
// installed before the server starts serving).
func (s *Server) defaultView() *view {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.views[DefaultGraph]
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	v := s.defaultView()
	vtx, hops, ok := parseZoomParams(r, v.g.NumV)
	data := struct {
		N, M     int64
		V        int32
		Hops     int
		ShowZoom bool
	}{int64(v.g.NumV), v.g.NumEdges(), vtx, hops, ok && r.URL.Query().Get("v") != ""}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := page.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	s.servePNG(w, r, s.defaultView())
}

func (s *Server) handleLayoutSVG(w http.ResponseWriter, r *http.Request) {
	s.serveSVG(w, r, s.defaultView())
}

func (s *Server) handleZoom(w http.ResponseWriter, r *http.Request) {
	s.serveZoom(w, r, s.defaultView())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.serveStats(w, r, s.defaultView())
}

// writeRevalidated serves body with an ETag derived from the render-cache
// key — which already encodes graph name, view generation, and catalog
// generation — and honors If-None-Match. A fronting router replicates
// hot tiles into its own LRU and revalidates each hit with a conditional
// GET: an unchanged generation costs a 304 instead of a re-download, a
// mutation or fresh layout changes the key and the 200 carries new bytes.
func writeRevalidated(w http.ResponseWriter, r *http.Request, key, ctype string, body []byte) {
	etag := `"` + key + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", ctype)
	if matchesETag(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	_, _ = w.Write(body)
}

// matchesETag reports whether the If-None-Match header value (a possibly
// comma-separated list, possibly "*") matches etag.
func matchesETag(header, etag string) bool {
	for _, tok := range strings.Split(header, ",") {
		if tok = strings.TrimSpace(tok); tok == etag || tok == "*" {
			return true
		}
	}
	return false
}

// servePNG renders (or serves the cached) global PNG of a view.
func (s *Server) servePNG(w http.ResponseWriter, r *http.Request, v *view) {
	key := s.cacheKey(v, "global.png")
	png, err := s.renderCached(key, func() ([]byte, error) {
		return encodePNG(v.g, v.layout)
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeRevalidated(w, r, key, "image/png", png)
}

func (s *Server) serveSVG(w http.ResponseWriter, r *http.Request, v *view) {
	key := s.cacheKey(v, "global.svg")
	svg, err := s.renderCached(key, func() ([]byte, error) {
		var buf bytes.Buffer
		if err := render.DrawSVG(&buf, v.g, v.layout, render.Options{Size: 700}); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeRevalidated(w, r, key, "image/svg+xml", svg)
}

func (s *Server) serveZoom(w http.ResponseWriter, r *http.Request, v *view) {
	vtx, hops, ok := parseZoomParams(r, v.g.NumV)
	if !ok {
		http.Error(w, "bad v/hops parameters", http.StatusBadRequest)
		return
	}
	key := s.cacheKey(v, fmt.Sprintf("zoom:%d:%d", vtx, hops))
	png, err := s.renderCached(key, func() ([]byte, error) {
		s.zoomRenders.Inc()
		z, err := core.Zoom(v.g, vtx, hops, v.opt)
		if err != nil {
			return nil, err
		}
		return encodePNG(z.Subgraph, z.Layout)
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeRevalidated(w, r, key, "image/png", png)
}

func (s *Server) serveStats(w http.ResponseWriter, r *http.Request, v *view) {
	writeRevalidated(w, r, s.cacheKey(v, "stats"), "application/json", v.stats)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "layout not ready", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// renderCached returns the cached bytes for key, or renders them exactly
// once no matter how many requests race on a cold key: concurrent callers
// join the in-flight render (singleflight) instead of each running the
// full layout+encode, and distinct in-flight renders queue on the
// concurrency limit so a burst of cold keys cannot fork an unbounded
// number of core.Zoom layouts.
func (s *Server) renderCached(key string, render func() ([]byte, error)) ([]byte, error) {
	if b, ok := s.cache.Get(key); ok {
		return b, nil
	}
	b, _, err := s.flight.Do(key, func() ([]byte, error) {
		// Double-check: the previous flight for this key may have filled
		// the cache between our Get miss and winning the flight slot.
		if b, ok := s.cache.getQuiet(key); ok {
			return b, nil
		}
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		s.viewRenders.Inc()
		b, err := render()
		if err != nil {
			s.renderErrors.Inc()
			return nil, err
		}
		s.cache.Put(key, b)
		return b, nil
	})
	return b, err
}

// encodePNG renders a layout to PNG bytes at the standard viewer size.
func encodePNG(g *graph.CSR, l *core.Layout) ([]byte, error) {
	var buf bytes.Buffer
	if err := render.Draw(&buf, g, l, render.Options{Size: 700}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func parseZoomParams(r *http.Request, n int) (int32, int, bool) {
	q := r.URL.Query()
	v64, err1 := strconv.ParseInt(defaultStr(q.Get("v"), "0"), 10, 32)
	hops, err2 := strconv.Atoi(defaultStr(q.Get("hops"), "10"))
	if err1 != nil || err2 != nil || v64 < 0 || int(v64) >= n || hops < 1 || hops > 100 {
		return 0, 10, false
	}
	return int32(v64), hops, true
}

func defaultStr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// submitConfig converts an API job request into a pipeline.Config; kept
// here (not api.go) so the option surface lives next to the view types.
func submitConfig(alg pipeline.Algorithm, req jobRequest) pipeline.Config {
	return pipeline.Config{
		Algorithm: alg,
		Layout: core.Options{
			Subspace:   req.Subspace,
			Dims:       req.Dims,
			Seed:       req.Seed,
			Coupled:    req.Coupled,
			PlainOrtho: req.PlainOrtho,
		},
		RefineSweeps: req.RefineSweeps,
		SkipQuality:  req.SkipQuality,
	}
}
