// Package server implements the §4.5.2 vision of ParHDE's zoom feature:
// "this would be useful for future browser-based interactive graph
// visualization". It serves the global layout of a graph and renders
// zoomed k-hop neighborhood layouts on demand — feasible interactively
// because ParHDE lays out million-edge graphs in real time.
package server

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/render"
)

// Server holds one laid-out graph and renders views of it.
type Server struct {
	g      *graph.CSR
	layout *core.Layout
	opt    core.Options

	mu    sync.Mutex
	cache map[string][]byte // rendered PNGs by query signature
}

// New computes the global layout of g and returns a ready-to-serve
// Server.
func New(g *graph.CSR, opt core.Options) (*Server, error) {
	layout, _, err := core.ParHDE(g, opt)
	if err != nil {
		return nil, err
	}
	return &Server{g: g, layout: layout, opt: opt, cache: map[string][]byte{}}, nil
}

// Handler returns the HTTP mux: / (page), /layout.png, /zoom.png, /stats.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/layout.png", s.handleLayout)
	mux.HandleFunc("/layout.svg", s.handleLayoutSVG)
	mux.HandleFunc("/zoom.png", s.handleZoom)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

var page = template.Must(template.New("index").Parse(`<!doctype html>
<html><head><title>ParHDE interactive layout</title></head>
<body style="font-family:sans-serif">
<h1>ParHDE layout — n={{.N}}, m={{.M}}</h1>
<p>Global structure below. Zoom into a vertex's neighborhood:</p>
<form action="/" method="get">
  vertex <input name="v" value="{{.V}}" size="9">
  hops <input name="hops" value="{{.Hops}}" size="3">
  <input type="submit" value="zoom">
</form>
{{if .ShowZoom}}<h2>{{.Hops}}-hop neighborhood of vertex {{.V}}</h2>
<img src="/zoom.png?v={{.V}}&hops={{.Hops}}" width="45%">{{end}}
<h2>Global layout</h2>
<img src="/layout.png" width="45%">
</body></html>`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	v, hops, ok := parseZoomParams(r, s.g.NumV)
	data := struct {
		N, M     int64
		V        int32
		Hops     int
		ShowZoom bool
	}{int64(s.g.NumV), s.g.NumEdges(), v, hops, ok && r.URL.Query().Get("v") != ""}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := page.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	png, err := s.renderCached("global", func() (*graph.CSR, *core.Layout, error) {
		return s.g, s.layout, nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	_, _ = w.Write(png)
}

func (s *Server) handleLayoutSVG(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	svg, ok := s.cache["global.svg"]
	s.mu.Unlock()
	if !ok {
		var buf writerBuffer
		if err := render.DrawSVG(&buf, s.g, s.layout, render.Options{Size: 700}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s.mu.Lock()
		s.cache["global.svg"] = buf.b
		s.mu.Unlock()
		svg = buf.b
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write(svg)
}

func (s *Server) handleZoom(w http.ResponseWriter, r *http.Request) {
	v, hops, ok := parseZoomParams(r, s.g.NumV)
	if !ok {
		http.Error(w, "bad v/hops parameters", http.StatusBadRequest)
		return
	}
	key := fmt.Sprintf("zoom:%d:%d", v, hops)
	png, err := s.renderCached(key, func() (*graph.CSR, *core.Layout, error) {
		z, err := core.Zoom(s.g, v, hops, s.opt)
		if err != nil {
			return nil, nil, err
		}
		return z.Subgraph, z.Layout, nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	_, _ = w.Write(png)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	q := core.Evaluate(s.g, s.layout)
	stats := map[string]interface{}{
		"vertices":       s.g.NumV,
		"edges":          s.g.NumEdges(),
		"maxDegree":      s.g.MaxDegree(),
		"hallRatio":      q.HallRatio,
		"meanEdgeLength": q.MeanEdgeLength,
		"edgeLengthCV":   q.EdgeLengthCV,
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(stats); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// renderCached renders a view once and caches the PNG bytes.
func (s *Server) renderCached(key string, view func() (*graph.CSR, *core.Layout, error)) ([]byte, error) {
	s.mu.Lock()
	if png, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return png, nil
	}
	s.mu.Unlock()
	g, lay, err := view()
	if err != nil {
		return nil, err
	}
	var buf writerBuffer
	if err := render.Draw(&buf, g, lay, render.Options{Size: 700}); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.cache[key] = buf.b
	s.mu.Unlock()
	return buf.b, nil
}

type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func parseZoomParams(r *http.Request, n int) (int32, int, bool) {
	q := r.URL.Query()
	v64, err1 := strconv.ParseInt(defaultStr(q.Get("v"), "0"), 10, 32)
	hops, err2 := strconv.Atoi(defaultStr(q.Get("hops"), "10"))
	if err1 != nil || err2 != nil || v64 < 0 || int(v64) >= n || hops < 1 || hops > 100 {
		return 0, 10, false
	}
	return int32(v64), hops, true
}

func defaultStr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
