// Package server implements the §4.5.2 vision of ParHDE's zoom feature:
// "this would be useful for future browser-based interactive graph
// visualization". It serves the global layout of a graph and renders
// zoomed k-hop neighborhood layouts on demand — feasible interactively
// because ParHDE lays out million-edge graphs in real time.
//
// The serving layer is built for sustained traffic: every rendered view
// goes through a singleflight + byte-budget LRU cache shared by the PNG,
// SVG, and zoom handlers; expensive core.Zoom layouts run under a
// concurrency limit; and an internal/obs registry exports request
// counters, latency histograms, cache behavior, and the per-phase
// core.Report breakdown on /metrics.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"html/template"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/render"
)

// DefaultCacheBytes is the render-cache budget when Config.CacheBytes is
// zero: enough for a few hundred typical 700-px renders without letting a
// key-space crawl grow the heap unboundedly.
const DefaultCacheBytes int64 = 64 << 20

// Config tunes the serving layer. The zero value gets sane defaults.
type Config struct {
	// CacheBytes is the render-cache budget. 0 means DefaultCacheBytes;
	// negative disables the bound (not recommended for public traffic).
	CacheBytes int64
	// MaxConcurrentRenders caps concurrently executing expensive renders
	// (distinct cache keys; same-key requests are deduplicated before the
	// limit applies). 0 means GOMAXPROCS.
	MaxConcurrentRenders int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// AccessLog, when non-nil, receives one structured line per request.
	AccessLog *log.Logger
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.MaxConcurrentRenders <= 0 {
		c.MaxConcurrentRenders = runtime.GOMAXPROCS(0)
	}
	return c
}

// Server holds one laid-out graph and renders views of it.
type Server struct {
	g      *graph.CSR
	layout *core.Layout
	report *core.Report
	opt    core.Options
	cfg    Config

	cache  *byteLRU
	flight flightGroup
	sem    chan struct{} // expensive-render concurrency limit

	reg          *obs.Registry
	zoomRenders  *obs.Counter // core.Zoom layouts actually executed
	viewRenders  *obs.Counter // all renders actually executed (any kind)
	renderErrors *obs.Counter

	ready atomic.Bool
	stats []byte // /stats body, computed once (the layout is immutable)
}

// New computes the global layout of g and returns a ready-to-serve
// Server with the default Config.
func New(g *graph.CSR, opt core.Options) (*Server, error) {
	return NewWithConfig(g, opt, Config{})
}

// NewWithConfig computes the global layout of g and returns a
// ready-to-serve Server. The layout-quality sweep for /stats runs once
// here rather than per request (core.Evaluate is O(m)).
func NewWithConfig(g *graph.CSR, opt core.Options, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	layout, rep, err := core.ParHDE(g, opt)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	s := &Server{
		g:      g,
		layout: layout,
		report: rep,
		opt:    opt,
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.MaxConcurrentRenders),
		reg:    reg,
		cache: newByteLRU(cfg.CacheBytes,
			reg.Counter("render_cache_hits_total"),
			reg.Counter("render_cache_misses_total"),
			reg.Counter("render_cache_evictions_total")),
		zoomRenders:  reg.Counter("zoom_layouts_total"),
		viewRenders:  reg.Counter("view_renders_total"),
		renderErrors: reg.Counter("render_errors_total"),
	}
	reg.GaugeFunc("render_cache_bytes", func() float64 { return float64(s.cache.Bytes()) })
	reg.GaugeFunc("render_cache_entries", func() float64 { return float64(s.cache.Len()) })
	for _, p := range rep.Breakdown.Phases() {
		d := p.D
		reg.GaugeFunc(fmt.Sprintf("parhde_phase_seconds{phase=%q}", p.Name),
			func() float64 { return d.Seconds() })
	}

	q := core.Evaluate(g, layout)
	stats, err := json.Marshal(map[string]interface{}{
		"vertices":       g.NumV,
		"edges":          g.NumEdges(),
		"maxDegree":      g.MaxDegree(),
		"hallRatio":      q.HallRatio,
		"meanEdgeLength": q.MeanEdgeLength,
		"edgeLengthCV":   q.EdgeLengthCV,
		"layoutSeconds":  rep.Breakdown.Total.Seconds(),
	})
	if err != nil {
		return nil, err
	}
	s.stats = append(stats, '\n')
	s.ready.Store(true)
	return s, nil
}

// Report returns the layout run's per-phase report.
func (s *Server) Report() *core.Report { return s.report }

// Metrics returns the server's metric registry (also served on /metrics).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// routes are the label values the access-log middleware may emit; every
// other path collapses into "other" to bound metric cardinality.
var routes = map[string]bool{
	"/": true, "/layout.png": true, "/layout.svg": true, "/zoom.png": true,
	"/stats": true, "/healthz": true, "/metrics": true,
}

func routeOf(r *http.Request) string {
	if routes[r.URL.Path] {
		return r.URL.Path
	}
	if strings.HasPrefix(r.URL.Path, "/debug/pprof/") {
		return "/debug/pprof/"
	}
	return "other"
}

// Handler returns the instrumented HTTP mux: / (page), /layout.png,
// /layout.svg, /zoom.png, /stats, /healthz, /metrics, and (when enabled)
// /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/layout.png", s.handleLayout)
	mux.HandleFunc("/layout.svg", s.handleLayoutSVG)
	mux.HandleFunc("/zoom.png", s.handleZoom)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.reg.Handler())
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return obs.Middleware(s.reg, s.cfg.AccessLog, routeOf, mux)
}

var page = template.Must(template.New("index").Parse(`<!doctype html>
<html><head><title>ParHDE interactive layout</title></head>
<body style="font-family:sans-serif">
<h1>ParHDE layout — n={{.N}}, m={{.M}}</h1>
<p>Global structure below. Zoom into a vertex's neighborhood:</p>
<form action="/" method="get">
  vertex <input name="v" value="{{.V}}" size="9">
  hops <input name="hops" value="{{.Hops}}" size="3">
  <input type="submit" value="zoom">
</form>
{{if .ShowZoom}}<h2>{{.Hops}}-hop neighborhood of vertex {{.V}}</h2>
<img src="/zoom.png?v={{.V}}&hops={{.Hops}}" width="45%">{{end}}
<h2>Global layout</h2>
<img src="/layout.png" width="45%">
</body></html>`))

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	v, hops, ok := parseZoomParams(r, s.g.NumV)
	data := struct {
		N, M     int64
		V        int32
		Hops     int
		ShowZoom bool
	}{int64(s.g.NumV), s.g.NumEdges(), v, hops, ok && r.URL.Query().Get("v") != ""}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := page.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	png, err := s.renderCached("global.png", func() ([]byte, error) {
		return encodePNG(s.g, s.layout)
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	_, _ = w.Write(png)
}

func (s *Server) handleLayoutSVG(w http.ResponseWriter, r *http.Request) {
	svg, err := s.renderCached("global.svg", func() ([]byte, error) {
		var buf bytes.Buffer
		if err := render.DrawSVG(&buf, s.g, s.layout, render.Options{Size: 700}); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write(svg)
}

func (s *Server) handleZoom(w http.ResponseWriter, r *http.Request) {
	v, hops, ok := parseZoomParams(r, s.g.NumV)
	if !ok {
		http.Error(w, "bad v/hops parameters", http.StatusBadRequest)
		return
	}
	key := fmt.Sprintf("zoom:%d:%d", v, hops)
	png, err := s.renderCached(key, func() ([]byte, error) {
		s.zoomRenders.Inc()
		z, err := core.Zoom(s.g, v, hops, s.opt)
		if err != nil {
			return nil, err
		}
		return encodePNG(z.Subgraph, z.Layout)
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	_, _ = w.Write(png)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(s.stats)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "layout not ready", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// renderCached returns the cached bytes for key, or renders them exactly
// once no matter how many requests race on a cold key: concurrent callers
// join the in-flight render (singleflight) instead of each running the
// full layout+encode, and distinct in-flight renders queue on the
// concurrency limit so a burst of cold keys cannot fork an unbounded
// number of core.Zoom layouts.
func (s *Server) renderCached(key string, render func() ([]byte, error)) ([]byte, error) {
	if b, ok := s.cache.Get(key); ok {
		return b, nil
	}
	b, _, err := s.flight.Do(key, func() ([]byte, error) {
		// Double-check: the previous flight for this key may have filled
		// the cache between our Get miss and winning the flight slot.
		if b, ok := s.cache.getQuiet(key); ok {
			return b, nil
		}
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		s.viewRenders.Inc()
		b, err := render()
		if err != nil {
			s.renderErrors.Inc()
			return nil, err
		}
		s.cache.Put(key, b)
		return b, nil
	})
	return b, err
}

// encodePNG renders a layout to PNG bytes at the standard viewer size.
func encodePNG(g *graph.CSR, l *core.Layout) ([]byte, error) {
	var buf bytes.Buffer
	if err := render.Draw(&buf, g, l, render.Options{Size: 700}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func parseZoomParams(r *http.Request, n int) (int32, int, bool) {
	q := r.URL.Query()
	v64, err1 := strconv.ParseInt(defaultStr(q.Get("v"), "0"), 10, 32)
	hops, err2 := strconv.Atoi(defaultStr(q.Get("hops"), "10"))
	if err1 != nil || err2 != nil || v64 < 0 || int(v64) >= n || hops < 1 || hops > 100 {
		return 0, 10, false
	}
	return int32(v64), hops, true
}

func defaultStr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
