package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/jobs"
)

// uploadGrid POSTs an n-by-n grid as an edge list under name. The
// restart test uses grids big enough that a layout job takes real time,
// so Close reliably interrupts work mid-flight.
func uploadGrid(t *testing.T, url, name string, n int) {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, gen.Grid2D(n, n)); err != nil {
		t.Fatal(err)
	}
	uploadGraph(t, url, name, buf.String())
}

// submitJob POSTs a layout job and returns the accepted job id.
func submitJob(t *testing.T, url, graphName string, subspace int) string {
	t.Helper()
	body := fmt.Sprintf(`{"graph":%q,"subspace":%d,"seed":1}`, graphName, subspace)
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// TestWorkerRestartRecoversJobs kills a worker with jobs queued and
// running, restarts it on the same DataDir, and asserts the interrupted
// work replays to completion: the uploaded graphs come back, the jobs
// re-run under fresh ids, and no intent is left behind. This is the
// single-process core of the sharded soak's zero-dropped-jobs guarantee.
func TestWorkerRestartRecoversJobs(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{WorkerID: "w1", DataDir: dir, Workers: 1, QueueDepth: 16}
	g := gen.PlateWithHoles(20, 20)
	s, err := NewWithConfig(g, core.Options{Subspace: 8, Seed: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	uploadGrid(t, ts.URL, "ga", 80)
	uploadGrid(t, ts.URL, "gb", 80)

	// Load the worker: with one pool worker, later jobs sit queued while
	// an earlier one runs. Big-enough subspaces keep the runner busy long
	// enough for Close to interrupt something mid-flight.
	ids := []string{
		submitJob(t, ts.URL, "ga", 256),
		submitJob(t, ts.URL, "gb", 256),
		submitJob(t, ts.URL, "ga", 192),
		submitJob(t, ts.URL, "gb", 192),
	}
	// Kill the worker. Close cancels the running job and drains the
	// queue as shutdown-cancelled — none of the four was resolved by a
	// user, so every unfinished one must leave its intent behind.
	ts.Close()
	s.Close()

	pending, errs := jobs.PendingIntents(dir)
	if len(errs) != 0 {
		t.Fatalf("intent scan errors: %v", errs)
	}
	finished := 0
	if recs, _ := filepath.Glob(filepath.Join(dir, "w1-j*.json")); true {
		for _, p := range recs {
			if !strings.HasSuffix(p, ".intent.json") {
				finished++
			}
		}
	}
	if finished+len(pending) != len(ids) {
		t.Fatalf("records(%d) + pending intents(%d) != submitted(%d)", finished, len(pending), len(ids))
	}
	if len(pending) == 0 {
		t.Fatal("shutdown interrupted nothing; test needs slower jobs")
	}

	// Restart on the same DataDir: catalog shard and interrupted jobs
	// must come back without any client involvement.
	s2, err := NewWithConfig(g, core.Options{Subspace: 8, Seed: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	for _, name := range []string{"ga", "gb"} {
		if _, ok := s2.Catalog().Get(name); !ok {
			t.Fatalf("graph %q not restored after restart", name)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		left, _ := jobs.PendingIntents(dir)
		busy := false
		for _, st := range s2.Jobs().List() {
			if st.State == "queued" || st.State == "running" {
				busy = true
			}
			if st.State == "failed" || st.State == "cancelled" {
				t.Fatalf("recovered job %s ended %s: %s", st.ID, st.State, st.Error)
			}
		}
		if len(left) == 0 && !busy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovery never drained: %d intents left, busy=%v", len(left), busy)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Every submission is now a completed record: nothing was dropped.
	recs, _ := filepath.Glob(filepath.Join(dir, "w1-j*.json"))
	finished = 0
	for _, p := range recs {
		if !strings.HasSuffix(p, ".intent.json") {
			finished++
		}
	}
	if finished != len(ids) {
		t.Fatalf("finished records = %d, want %d (one per accepted job)", finished, len(ids))
	}
	// The restarted engine's ids continued past the first life's.
	if id := submitJob(t, ts2.URL, "ga", 8); id <= ids[len(ids)-1] {
		t.Fatalf("id sequence reset: new id %s after %s", id, ids[len(ids)-1])
	}
}

// TestRenderETagRevalidation covers the router's replication contract:
// renders carry a generation-keyed ETag, an If-None-Match hit costs a
// 304 with no body, and a new layout install changes the tag.
func TestRenderETagRevalidation(t *testing.T) {
	_, ts := newTestServerPair(t, Config{})
	resp, err := http.Get(ts.URL + "/layout.png")
	if err != nil {
		t.Fatal(err)
	}
	etag := resp.Header.Get("ETag")
	resp.Body.Close()
	if etag == "" || !strings.Contains(etag, "g:default:") {
		t.Fatalf("ETag = %q", etag)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/layout.png", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status %d, want 304", resp2.StatusCode)
	}
	if got := resp2.Header.Get("ETag"); got != etag {
		t.Fatalf("304 ETag %q != %q", got, etag)
	}

	// A stale tag (different generation) must get fresh bytes, not 304.
	req.Header.Set("If-None-Match", `"g:default:999:999:global.png"`)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("stale revalidation status %d, want 200", resp3.StatusCode)
	}
}

// TestShardzReportsIdentity checks the router's health/identity probe.
func TestShardzReportsIdentity(t *testing.T) {
	_, ts := newTestServerPair(t, Config{WorkerID: "w7"})
	resp, err := http.Get(ts.URL + "/shardz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Hdeserve-Worker"); got != "w7" {
		t.Fatalf("worker header %q", got)
	}
	var body struct {
		Worker string   `json:"worker"`
		Graphs []string `json:"graphs"`
		Ready  bool     `json:"ready"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Worker != "w7" || !body.Ready || len(body.Graphs) != 1 || body.Graphs[0] != "default" {
		t.Fatalf("shardz = %+v", body)
	}
}
