package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// sseClient reads events off one /stream connection.
type sseClient struct {
	resp   *http.Response
	br     *bufio.Reader
	cancel context.CancelFunc
}

func dialStream(t *testing.T, url, graph string) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/graphs/"+graph+"/stream", nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	c := &sseClient{resp: resp, br: bufio.NewReader(resp.Body), cancel: cancel}
	t.Cleanup(c.close)
	return c
}

func (c *sseClient) close() {
	c.cancel()
	c.resp.Body.Close()
}

// next blocks for the next SSE event, decoding its JSON payload.
func (c *sseClient) next(t *testing.T) (string, streamEvent) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	_ = c.resp.Body // the request context bounds reads; keep parsing simple
	var event string
	var data []byte
	for {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for SSE event")
		}
		line, err := c.br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && event != "":
			var ev streamEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				t.Fatalf("bad event payload %q: %v", data, err)
			}
			return event, ev
		}
	}
}

func patchGraph(t *testing.T, url, graph, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPatch, url+"/graphs/"+graph, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestMutateStreamMonotoneVersions is the end-to-end acceptance test: an
// SSE client sees a snapshot and then one monotonically-versioned
// coordinate delta per mutation batch, across three consecutive batches.
func TestMutateStreamMonotoneVersions(t *testing.T) {
	_, ts := newTestServerPair(t, Config{})
	c := dialStream(t, ts.URL, "default")

	event, snap := c.next(t)
	if event != "snapshot" || !snap.Full || snap.N == 0 || len(snap.Coords) != snap.N {
		t.Fatalf("first event = %q %+v, want full snapshot", event, snap)
	}
	last := snap.Version

	batches := []string{
		`{"mutations":[{"op":"addEdge","u":0,"v":47},{"op":"addEdge","u":1,"v":33}]}`,
		`{"mutations":[{"op":"delEdge","u":0,"v":47}]}`,
		`{"mutations":[{"op":"addVertices","count":1},{"op":"addEdge","u":0,"v":2}]}`,
	}
	for i, body := range batches {
		code, b := patchGraph(t, ts.URL, "default", body)
		if code != http.StatusAccepted {
			t.Fatalf("batch %d: status %d: %s", i, code, b)
		}
		event, ev := c.next(t)
		if event != "delta" {
			t.Fatalf("batch %d: event %q, want delta", i, event)
		}
		if ev.Version <= last {
			t.Fatalf("batch %d: version %d not greater than %d", i, ev.Version, last)
		}
		last = ev.Version
		if ev.Full {
			if len(ev.Coords) != ev.N {
				t.Fatalf("batch %d: full event carries %d rows for n=%d", i, len(ev.Coords), ev.N)
			}
		} else {
			if len(ev.Changed) == 0 || len(ev.Changed) != len(ev.Coords) {
				t.Fatalf("batch %d: delta with %d indices, %d rows", i, len(ev.Changed), len(ev.Coords))
			}
		}
	}
}

// TestStaleTileNeverServed is the cache-invalidation regression test: a
// cached tile must not be served once the graph's catalog generation
// moves — whether via the explicit Touch API or a PATCH mutation — even
// before a new layout installs.
func TestStaleTileNeverServed(t *testing.T) {
	s, ts := newTestServerPair(t, Config{})
	get := func() []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/graphs/default/layout.png")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	orig := get()
	renders := s.viewRenders.Value()
	get()
	if got := s.viewRenders.Value(); got != renders {
		t.Fatalf("second request re-rendered (%d → %d), want cache hit", renders, got)
	}
	// Touch: same graph bytes, but the cached tile may no longer be
	// trusted; the server must re-render rather than serve the old key.
	if _, err := s.cat.Touch("default"); err != nil {
		t.Fatal(err)
	}
	get()
	if got := s.viewRenders.Value(); got != renders+1 {
		t.Fatalf("post-Touch renders = %d, want %d (stale tile served?)", got, renders+1)
	}

	// PATCH: generation moves again; once the refinement installs, the
	// tile must re-render from the new layout and differ from the
	// original drawing.
	c := dialStream(t, ts.URL, "default")
	if ev, _ := c.next(t); ev != "snapshot" {
		t.Fatalf("expected snapshot, got %q", ev)
	}
	code, b := patchGraph(t, ts.URL, "default",
		`{"mutations":[{"op":"addEdge","u":0,"v":451},{"op":"addEdge","u":3,"v":333}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("patch status %d: %s", code, b)
	}
	c.next(t) // delta ⇒ new view installed
	after := get()
	if bytes.Equal(after, orig) {
		t.Fatal("tile unchanged after mutation + relayout")
	}
}

// TestMutateErrors locks in the PATCH error discipline.
func TestMutateErrors(t *testing.T) {
	s, ts := newTestServerPair(t, Config{})
	cases := []struct {
		name, graph, body string
		want              int
	}{
		{"unknown graph", "nope", `{"mutations":[{"op":"addEdge","u":0,"v":1}]}`, http.StatusNotFound},
		{"malformed body", "default", `{"mutations":`, http.StatusBadRequest},
		{"unknown op", "default", `{"mutations":[{"op":"recolor","u":0,"v":1}]}`, http.StatusBadRequest},
		{"empty batch", "default", `{"mutations":[]}`, http.StatusBadRequest},
		{"self loop", "default", `{"mutations":[{"op":"addEdge","u":4,"v":4}]}`, http.StatusBadRequest},
		{"out of range", "default", `{"mutations":[{"op":"addEdge","u":0,"v":99999999}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, b := patchGraph(t, ts.URL, tc.graph, tc.body)
			if code != tc.want {
				t.Fatalf("status %d, want %d: %s", code, tc.want, b)
			}
		})
	}
	// Weighted graphs cannot be promoted: 409.
	if err := s.cat.Add("wg", s.defaultView().g.WithUnitWeights(), "test"); err != nil {
		t.Fatal(err)
	}
	if code, _ := patchGraph(t, ts.URL, "wg", `{"mutations":[{"op":"addEdge","u":0,"v":9}]}`); code != http.StatusConflict {
		t.Fatalf("weighted patch status %d, want 409", code)
	}
	// Unknown graph's stream is 404.
	r2, err := http.Get(ts.URL + "/graphs/nope/stream")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Fatalf("stream of unknown graph: %d, want 404", r2.StatusCode)
	}
}

// TestStreamSoakNoGoroutineLeak runs a mutate loop against several
// concurrent SSE subscribers, then disconnects them all and verifies the
// handler goroutines unwind (run under -race in CI).
func TestStreamSoakNoGoroutineLeak(t *testing.T) {
	s, ts := newTestServerPair(t, Config{})
	before := runtime.NumGoroutine()

	const subscribers = 8
	clients := make([]*sseClient, subscribers)
	for i := range clients {
		clients[i] = dialStream(t, ts.URL, "default")
		if ev, _ := clients[i].next(t); ev != "snapshot" {
			t.Fatalf("subscriber %d: expected snapshot, got %q", i, ev)
		}
	}
	if got := s.streamSubs.Value(); got != subscribers {
		t.Fatalf("stream_subscribers = %d, want %d", got, subscribers)
	}

	for round := 0; round < 3; round++ {
		code, b := patchGraph(t, ts.URL, "default",
			fmt.Sprintf(`{"mutations":[{"op":"addEdge","u":%d,"v":%d}]}`, round, 100+31*round))
		if code != http.StatusAccepted {
			t.Fatalf("round %d: status %d: %s", round, code, b)
		}
		for i, c := range clients {
			if ev, payload := c.next(t); ev != "delta" || payload.Version < 2 {
				t.Fatalf("round %d subscriber %d: %q %+v", round, i, ev, payload)
			}
		}
	}

	for _, c := range clients {
		c.close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		// Idle keep-alive connections in the shared client transport hold
		// goroutines on both ends; drop them so only a real server-side
		// leak can keep the count elevated.
		http.DefaultClient.CloseIdleConnections()
		if s.streamSubs.Value() == 0 && runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines: %d before, %d after disconnect; %d subscribers still registered\n%s",
				before, runtime.NumGoroutine(), s.streamSubs.Value(), buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWarmInstallMetrics checks that mutations route through the
// warm-start path and show up on /metrics.
func TestWarmInstallMetrics(t *testing.T) {
	s, ts := newTestServerPair(t, Config{})
	c := dialStream(t, ts.URL, "default")
	c.next(t)
	code, b := patchGraph(t, ts.URL, "default", `{"mutations":[{"op":"addEdge","u":0,"v":77}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("patch status %d: %s", code, b)
	}
	c.next(t) // wait for the install
	if got := s.warmLayouts.Value(); got != 1 {
		t.Fatalf("warm installs = %d, want 1", got)
	}
	if got := s.refineSweeps.Value(); got <= 0 {
		t.Fatalf("refine_sweeps_total = %d, want > 0", got)
	}
	if got := s.mutationsApplied.Value(); got != 1 {
		t.Fatalf("graph_mutations_total = %d, want 1", got)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	b, _ = io.ReadAll(mresp.Body)
	for _, want := range []string{
		`layouts_installed_total{mode="warm"} 1`,
		"refine_sweeps_total",
		"stream_broadcast_seconds",
		"stream_subscribers",
		"graph_mutations_total 1",
	} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
