package obs

import (
	"fmt"
	"log"
	"net/http"
	"time"
)

// statusWriter captures the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports streaming, so
// wrapping a handler does not silently disable flushing.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps next with request accounting and an optional
// structured access log. Per-route request counters
// (http_requests_total{route=...,code=...}) and latency histograms
// (http_request_duration_seconds{route=...}) land in reg. routeOf maps a
// request to a bounded route label — pass nil to use the raw URL path
// (only safe when the path space is bounded). logger, when non-nil,
// receives one logfmt-style line per request.
func Middleware(reg *Registry, logger *log.Logger, routeOf func(*http.Request) string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := r.URL.Path
		if routeOf != nil {
			route = routeOf(r)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(start)
		if sw.status == 0 { // handler wrote nothing
			sw.status = http.StatusOK
		}
		reg.Counter(fmt.Sprintf("http_requests_total{route=%q,code=\"%d\"}", route, sw.status)).Inc()
		reg.Counter("http_response_bytes_total").Add(sw.bytes)
		reg.Histogram(fmt.Sprintf("http_request_duration_seconds{route=%q}", route)).ObserveDuration(dur)
		if logger != nil {
			logger.Printf("method=%s path=%s route=%s status=%d bytes=%d dur=%s remote=%s",
				r.Method, r.URL.RequestURI(), route, sw.status, sw.bytes,
				dur.Round(time.Microsecond), r.RemoteAddr)
		}
	})
}
