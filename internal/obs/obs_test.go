package obs

import (
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("count=%d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	g.Add(-2)
	if g.Value() != 40 {
		t.Fatalf("gauge=%d, want 40", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	h.Observe(0.0007)                   // lands in the le=0.001 bucket
	h.Observe(0.3)                      // le=0.5
	h.ObserveDuration(20 * time.Second) // +Inf
	if h.Count() != 3 {
		t.Fatalf("count=%d, want 3", h.Count())
	}
	if s := h.Sum(); s < 20.2 || s > 20.4 {
		t.Fatalf("sum=%g, want ~20.3", s)
	}
	if got := h.counts[len(h.counts)-1].Load(); got != 1 {
		t.Fatalf("+Inf bucket=%d, want 1", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same name must return the same counter")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name must return the same gauge")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name must return the same histogram")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`reqs_total{route="/a"}`).Add(3)
	r.Counter(`reqs_total{route="/b"}`).Inc()
	r.Gauge("cache_bytes").Set(123)
	r.GaugeFunc("phase_seconds", func() float64 { return 1.5 })
	r.Histogram(`lat_seconds{route="/a"}`).Observe(0.002)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{route="/a"} 3`,
		`reqs_total{route="/b"} 1`,
		"# TYPE cache_bytes gauge",
		"cache_bytes 123",
		"phase_seconds 1.5",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{route="/a",le="0.0025"} 1`,
		`lat_seconds_bucket{route="/a",le="+Inf"} 1`,
		`lat_seconds_sum{route="/a"} 0.002`,
		`lat_seconds_count{route="/a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The family TYPE line must appear exactly once despite two series.
	if strings.Count(out, "# TYPE reqs_total counter") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", out)
	}
	// Cumulative buckets: le=0.0025 upward all report the observation.
	if !strings.Contains(out, `lat_seconds_bucket{route="/a",le="1"} 1`) {
		t.Fatalf("buckets not cumulative:\n%s", out)
	}
	if strings.Contains(out, `le="0.001"} 1`) {
		t.Fatalf("observation leaked into a lower bucket:\n%s", out)
	}
}

func TestMiddleware(t *testing.T) {
	r := NewRegistry()
	var logged strings.Builder
	logger := log.New(&logged, "", 0)
	inner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/missing" {
			http.NotFound(w, req)
			return
		}
		_, _ = w.Write([]byte("hello"))
	})
	routeOf := func(req *http.Request) string {
		if req.URL.Path == "/ok" {
			return "/ok"
		}
		return "other"
	}
	ts := httptest.NewServer(Middleware(r, logger, routeOf, inner))
	defer ts.Close()

	for _, p := range []string{"/ok", "/ok", "/missing"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := r.Counter(`http_requests_total{route="/ok",code="200"}`).Value(); got != 2 {
		t.Fatalf("ok requests=%d, want 2", got)
	}
	if got := r.Counter(`http_requests_total{route="other",code="404"}`).Value(); got != 1 {
		t.Fatalf("404 requests=%d, want 1", got)
	}
	if got := r.Histogram(`http_request_duration_seconds{route="/ok"}`).Count(); got != 2 {
		t.Fatalf("latency observations=%d, want 2", got)
	}
	if r.Counter("http_response_bytes_total").Value() < 10 {
		t.Fatal("response bytes not accounted")
	}
	lines := strings.Split(strings.TrimSpace(logged.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("access log has %d lines, want 3:\n%s", len(lines), logged.String())
	}
	if !strings.Contains(lines[0], "method=GET") || !strings.Contains(lines[0], "status=200") ||
		!strings.Contains(lines[0], "route=/ok") {
		t.Fatalf("unexpected access-log line: %s", lines[0])
	}
}
