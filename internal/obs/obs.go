// Package obs is the serving-layer observability kit: lock-free counters
// and gauges, fixed-bucket latency histograms, lazily-registered gauge
// functions, and a registry that renders everything in the Prometheus
// text exposition format. It exists so the interactive layout server (and
// any later batch/sharded serving front end) can expose request rates,
// cache behavior, and the per-phase core.Report breakdown without pulling
// in external dependencies.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric safe for concurrent use.
// The zero value is ready to use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value (bytes in a cache, entries in a
// map). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// defaultBuckets are the histogram upper bounds in seconds, spanning the
// fast cache-hit path (~µs–ms) through a heavyweight cold zoom layout.
var defaultBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram (cumulative buckets in
// the Prometheus sense are produced at export time; observation is a
// single atomic add into the owning bucket).
type Histogram struct {
	bounds   []float64
	counts   []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	count    atomic.Int64
	sumNanos atomic.Int64
}

// NewHistogram returns a histogram with the default latency buckets.
func NewHistogram() *Histogram {
	return &Histogram{
		bounds: defaultBuckets,
		counts: make([]atomic.Int64, len(defaultBuckets)+1),
	}
}

// Observe records a value in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(seconds * 1e9))
}

// ObserveDuration records d.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNanos.Load()) / 1e9 }

// Registry is a named collection of metrics. Series names may carry
// Prometheus-style labels inline: `http_requests_total{route="/zoom.png"}`.
// All accessors are get-or-create and safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() float64{},
	}
}

// Counter returns the counter registered under name, creating it if new.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if new.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it if
// new.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers f to be evaluated at scrape time and exported as a
// gauge named name. Registering the same name again replaces f.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = f
}

// splitSeries separates `family{label="x"}` into the metric family name
// and the raw label body (without braces; empty when unlabeled).
func splitSeries(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// joinLabels merges a series' inline labels with an extra label pair.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	if extra == "" {
		return labels
	}
	return labels + "," + extra
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), grouped by family with one # TYPE
// line each, in sorted order so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	type series struct {
		name string
		line func(io.Writer, string) // receives the full series name
		kind string
	}
	var all []series
	for name, c := range r.counters {
		all = append(all, series{name, func(w io.Writer, n string) {
			fmt.Fprintf(w, "%s %d\n", n, c.Value())
		}, "counter"})
	}
	for name, g := range r.gauges {
		all = append(all, series{name, func(w io.Writer, n string) {
			fmt.Fprintf(w, "%s %d\n", n, g.Value())
		}, "gauge"})
	}
	for name, f := range r.funcs {
		all = append(all, series{name, func(w io.Writer, n string) {
			fmt.Fprintf(w, "%s %g\n", n, f())
		}, "gauge"})
	}
	for name, h := range r.hists {
		all = append(all, series{name, func(w io.Writer, n string) {
			family, labels := splitSeries(n)
			var cum int64
			for i := range h.counts {
				cum += h.counts[i].Load()
				le := "+Inf"
				if i < len(h.bounds) {
					le = fmt.Sprintf("%g", h.bounds[i])
				}
				fmt.Fprintf(w, "%s_bucket{%s} %d\n",
					family, joinLabels(labels, fmt.Sprintf("le=%q", le)), cum)
			}
			if labels != "" {
				labels = "{" + labels + "}"
			}
			fmt.Fprintf(w, "%s_sum%s %g\n", family, labels, h.Sum())
			fmt.Fprintf(w, "%s_count%s %d\n", family, labels, h.Count())
		}, "histogram"})
	}
	r.mu.Unlock()

	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	typed := map[string]bool{}
	for _, s := range all {
		family, _ := splitSeries(s.name)
		if !typed[family] {
			typed[family] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", family, s.kind)
		}
		s.line(w, s.name)
	}
}

// Handler returns an http.Handler serving the registry as a Prometheus
// text-format scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
