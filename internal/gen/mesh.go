package gen

import "repro/internal/graph"

// PlateWithHoles generates the barth5 analogue: a triangulated rectangular
// plate of rows×cols vertices with four circular holes punched out. barth5
// is a 2-D structural finite-element mesh whose HDE drawing (Figure 1)
// shows exactly this global structure — "all the drawings capture global
// structure with four holes" (Figure 7). Vertices inside the holes are
// removed and the largest component is extracted with order-preserving
// relabeling, like any other input.
func PlateWithHoles(rows, cols int) *graph.CSR {
	type hole struct{ r, c, rad float64 }
	fr, fc := float64(rows), float64(cols)
	holes := []hole{
		{0.28 * fr, 0.28 * fc, 0.12 * minf(fr, fc)},
		{0.28 * fr, 0.72 * fc, 0.12 * minf(fr, fc)},
		{0.72 * fr, 0.28 * fc, 0.12 * minf(fr, fc)},
		{0.72 * fr, 0.72 * fc, 0.12 * minf(fr, fc)},
	}
	inHole := func(r, c int) bool {
		for _, h := range holes {
			dr, dc := float64(r)-h.r, float64(c)-h.c
			if dr*dr+dc*dc < h.rad*h.rad {
				return true
			}
		}
		return false
	}
	keep := make([]bool, rows*cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			keep[id(r, c)] = !inHole(r, c)
		}
	}
	edges := make([]graph.Edge, 0, 3*rows*cols)
	add := func(a, b int32) {
		if keep[a] && keep[b] {
			edges = append(edges, graph.Edge{U: a, V: b})
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !keep[id(r, c)] {
				continue
			}
			if c+1 < cols {
				add(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				add(id(r, c), id(r+1, c))
			}
			// Triangulating diagonal, alternating orientation so the mesh
			// has no global shear.
			if r+1 < rows && c+1 < cols {
				if (r+c)%2 == 0 {
					add(id(r, c), id(r+1, c+1))
				} else {
					add(id(r, c+1), id(r+1, c))
				}
			}
		}
	}
	g, err := graph.FromEdges(rows*cols, edges, graph.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}

// CountyMesh generates a pa2010 analogue: a planar census-block adjacency
// mesh. pa2010 is the Pennsylvania 2010 census-block graph — planar,
// low-degree, locality-ordered. We model it as a triangulated grid whose
// diagonals are randomly thinned, yielding average degree ≈ 4.9.
func CountyMesh(rows, cols int, seed uint64) *graph.CSR {
	rng := NewRNG(seed)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	edges := make([]graph.Edge, 0, 3*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
			if r+1 < rows && c+1 < cols && rng.Float64() < 0.45 {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c+1)})
			}
		}
	}
	g, err := graph.FromEdges(rows*cols, edges, graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		panic(err)
	}
	return g
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
