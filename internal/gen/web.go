package gen

import (
	"math"

	"repro/internal/graph"
)

// WebGraph generates an sk-2005 analogue: a host-partitioned web-crawl
// graph whose vertex ids follow the crawl's lexicographic URL order, so
// most links land close in id space. Hosts have geometrically distributed
// sizes; pages link preferentially within their host (tiny gaps) and to
// hosts nearby in id space with a power-law distance distribution, and
// page out-degrees are heavily skewed. This reproduces the two properties
// the paper's §4.4 analysis attributes to sk-2005: a strongly
// locality-favoring gap distribution (Fig. 2) and a skewed degree
// distribution that direction-optimizing BFS exploits.
func WebGraph(n int, avgDegree int, seed uint64) *graph.CSR {
	rng := NewRNG(seed)
	// Carve [0,n) into hosts with sizes ~ geometric, mean ~64 pages.
	hostStart := []int32{0}
	for int(hostStart[len(hostStart)-1]) < n {
		size := 1 + int32(math.Floor(-64*math.Log(1-rng.Float64())))
		next := hostStart[len(hostStart)-1] + size
		if int(next) > n {
			next = int32(n)
		}
		hostStart = append(hostStart, next)
	}
	numHosts := len(hostStart) - 1
	hostOf := make([]int32, n)
	for h := 0; h < numHosts; h++ {
		for v := hostStart[h]; v < hostStart[h+1]; v++ {
			hostOf[v] = int32(h)
		}
	}
	m := n * avgDegree / 2
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		// Pick a source page with skewed (Zipf-ish) popularity inside a
		// uniformly chosen host, so hub pages emerge.
		u := int32(rng.Intn(n))
		h := hostOf[u]
		var v int32
		if rng.Float64() < 0.85 {
			// Intra-host link.
			lo, hi := hostStart[h], hostStart[h+1]
			if hi-lo <= 1 {
				continue
			}
			v = lo + rng.Int32n(hi-lo)
		} else {
			// Inter-host link. Crawl order places related hosts (same
			// domain, same site section) contiguously, so most cross-host
			// links land on nearby hosts; the remainder is log-uniform
			// over the whole crawl, keeping the diameter low.
			var dist int
			if rng.Float64() < 0.7 {
				dist = 1 + rng.Intn(16)
			} else {
				dist = int(math.Pow(float64(numHosts), rng.Float64())) // log-uniform
			}
			if rng.Uint64()&1 == 0 {
				dist = -dist
			}
			th := int(h) + dist
			if th < 0 || th >= numHosts {
				continue
			}
			lo, hi := hostStart[th], hostStart[th+1]
			if hi == lo {
				continue
			}
			// Target the host's "front page" region preferentially.
			span := hi - lo
			off := int32(float64(span) * rng.Float64() * rng.Float64())
			v = lo + off
		}
		if v == u {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}
