package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func assertConnectedValid(t *testing.T, g *graph.CSR, name string) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: invalid graph: %v", name, err)
	}
	if _, count := graph.Components(g); count != 1 {
		t.Fatalf("%s: %d components, want 1", name, count)
	}
}

func TestUrandShape(t *testing.T) {
	g := Urand(10, 16, 1)
	assertConnectedValid(t, g, "urand")
	n := 1 << 10
	if g.NumV < n*9/10 {
		t.Fatalf("urand LCC too small: %d of %d", g.NumV, n)
	}
	avg := float64(2*g.NumEdges()) / float64(g.NumV)
	if avg < 10 || avg > 16 {
		t.Fatalf("urand average degree %.1f outside [10,16]", avg)
	}
}

func TestUrandDeterminism(t *testing.T) {
	a, b := Urand(8, 8, 7), Urand(8, 8, 7)
	if a.NumV != b.NumV || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different graph")
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			t.Fatal("same seed, different adjacency")
		}
	}
	c := Urand(8, 8, 8)
	if c.NumEdges() == a.NumEdges() && c.NumV == a.NumV {
		same := true
		for i := range a.Adj {
			if i >= len(c.Adj) || a.Adj[i] != c.Adj[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestKronSkewAndShape(t *testing.T) {
	g := Kron(10, 8, 3)
	assertConnectedValid(t, g, "kron")
	// R-MAT degree distributions are heavily skewed: the max degree should
	// far exceed the average.
	avg := float64(2*g.NumEdges()) / float64(g.NumV)
	if float64(g.MaxDegree()) < 4*avg {
		t.Fatalf("kron max degree %d not skewed vs avg %.1f", g.MaxDegree(), avg)
	}
}

func TestChungLuSkew(t *testing.T) {
	g := ChungLu(2000, 12, 2.2, 5)
	assertConnectedValid(t, g, "chunglu")
	avg := float64(2*g.NumEdges()) / float64(g.NumV)
	if float64(g.MaxDegree()) < 5*avg {
		t.Fatalf("chunglu max degree %d not skewed vs avg %.1f", g.MaxDegree(), avg)
	}
}

func TestGrid2DStructure(t *testing.T) {
	g := Grid2D(7, 9)
	assertConnectedValid(t, g, "grid2d")
	if g.NumV != 63 {
		t.Fatalf("n = %d", g.NumV)
	}
	// m = rows*(cols-1) + (rows-1)*cols
	want := int64(7*8 + 6*9)
	if g.NumEdges() != want {
		t.Fatalf("m = %d, want %d", g.NumEdges(), want)
	}
	// Corner degree 2, interior degree 4.
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree %d", g.Degree(0))
	}
	if g.Degree(int32(1*9+1)) != 4 {
		t.Fatalf("interior degree %d", g.Degree(10))
	}
}

func TestRoadIsSparseHighDiameter(t *testing.T) {
	g := Road(40, 40, 2)
	assertConnectedValid(t, g, "road")
	avg := float64(2*g.NumEdges()) / float64(g.NumV)
	if avg > 3.2 {
		t.Fatalf("road average degree %.2f too high", avg)
	}
}

func TestMesh3DStructure(t *testing.T) {
	g := Mesh3D(4, 5, 6)
	assertConnectedValid(t, g, "mesh3d")
	if g.NumV != 120 {
		t.Fatalf("n = %d", g.NumV)
	}
	want := int64(3*5*6 + 4*4*6 + 4*5*5)
	if g.NumEdges() != want {
		t.Fatalf("m = %d, want %d", g.NumEdges(), want)
	}
}

func TestPowerGrid(t *testing.T) {
	g := PowerGrid(20, 20, 4)
	assertConnectedValid(t, g, "powergrid")
	if g.NumV < 700 {
		t.Fatalf("powergrid LCC too small: %d", g.NumV)
	}
}

func TestWebGraphLocality(t *testing.T) {
	g := WebGraph(4000, 12, 6)
	assertConnectedValid(t, g, "web")
	// The defining property: mean adjacency gap far below the uniform
	// random expectation (~n/3).
	gs := graph.GapSummary(g)
	if gs.Mean > float64(g.NumV)/8 {
		t.Fatalf("web graph mean gap %.0f not locality-friendly (n=%d)", gs.Mean, g.NumV)
	}
	ur := Urand(12, 12, 6)
	ugs := graph.GapSummary(ur)
	if gs.Mean >= ugs.Mean {
		t.Fatalf("web mean gap %.0f not below urand %.0f", gs.Mean, ugs.Mean)
	}
}

func TestPlateWithHoles(t *testing.T) {
	g := PlateWithHoles(60, 60)
	assertConnectedValid(t, g, "plate")
	// Holes remove roughly 4·π·(0.12·60)² ≈ 650 vertices.
	if g.NumV >= 3600 || g.NumV < 2600 {
		t.Fatalf("plate n = %d, want within (2600, 3600)", g.NumV)
	}
}

func TestCountyMesh(t *testing.T) {
	g := CountyMesh(30, 30, 9)
	assertConnectedValid(t, g, "county")
	avg := float64(2*g.NumEdges()) / float64(g.NumV)
	if avg < 3.5 || avg > 5.5 {
		t.Fatalf("county mesh average degree %.2f outside planar range", avg)
	}
}

func TestSimpleGraphs(t *testing.T) {
	if g := Path(10); g.NumEdges() != 9 || g.Degree(0) != 1 || g.Degree(5) != 2 {
		t.Fatal("path malformed")
	}
	if g := Cycle(10); g.NumEdges() != 10 || g.Degree(0) != 2 {
		t.Fatal("cycle malformed")
	}
	if g := Star(10); g.NumEdges() != 9 || g.Degree(0) != 9 {
		t.Fatal("star malformed")
	}
	if g := Complete(6); g.NumEdges() != 15 || g.Degree(3) != 5 {
		t.Fatal("complete malformed")
	}
	if g := BinaryTree(15); g.NumEdges() != 14 || g.Degree(0) != 2 {
		t.Fatal("tree malformed")
	}
	for _, g := range []*graph.CSR{Path(10), Cycle(10), Star(10), Complete(6), BinaryTree(15)} {
		assertConnectedValid(t, g, "simple")
	}
}

func TestWithRandomWeightsSymmetric(t *testing.T) {
	g := Grid2D(8, 8)
	wg := WithRandomWeights(g, 10, 3)
	if err := wg.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, w := range wg.Weights {
		if w < 1 || w > 10 {
			t.Fatalf("weight %g outside [1,10]", w)
		}
	}
}

func TestRNGProperties(t *testing.T) {
	r := NewRNG(1)
	err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Float64 in [0,1).
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g", f)
		}
	}
	// Split streams diverge.
	a := NewRNG(9)
	b := a.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split stream identical to parent")
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(2000, 6, 0.1, 3)
	assertConnectedValid(t, g, "ws")
	avg := float64(2*g.NumEdges()) / float64(g.NumV)
	if avg < 4.5 || avg > 6.5 {
		t.Fatalf("ws average degree %.2f", avg)
	}
	// Small-world: diameter far below the beta=0 ring's n/k.
	if d := graph.PseudoDiameter(g, 0); d > 100 {
		t.Fatalf("ws diameter %d not small-world", d)
	}
	// Odd k is rounded up rather than rejected.
	g2 := WattsStrogatz(200, 3, 0.05, 4)
	assertConnectedValid(t, g2, "ws-oddk")
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(3000, 4, 5)
	assertConnectedValid(t, g, "ba")
	avg := float64(2*g.NumEdges()) / float64(g.NumV)
	if avg < 6 || avg > 9 {
		t.Fatalf("ba average degree %.2f, want ~8", avg)
	}
	// Preferential attachment: heavy skew.
	if float64(g.MaxDegree()) < 6*avg {
		t.Fatalf("ba max degree %d not skewed vs avg %.1f", g.MaxDegree(), avg)
	}
	if gi := graph.Gini(g); gi < 0.25 {
		t.Fatalf("ba degree Gini %.3f too uniform", gi)
	}
}

func TestRandomGeometric(t *testing.T) {
	g := RandomGeometric(4000, 0.03, 11)
	assertConnectedValid(t, g, "rgg")
	avg := float64(2*g.NumEdges()) / float64(g.NumV)
	// Expected degree ≈ nπr² ≈ 11.3.
	if avg < 6 || avg > 16 {
		t.Fatalf("rgg average degree %.1f", avg)
	}
	// Sweep ordering gives strong id locality: mean gap well below n/3.
	gs := graph.GapSummary(g)
	if gs.Mean > float64(g.NumV)/10 {
		t.Fatalf("rgg mean gap %.0f not local", gs.Mean)
	}
}
