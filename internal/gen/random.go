package gen

import (
	"math"

	"repro/internal/graph"
)

// Urand generates a GAP-style uniform random graph: m endpoint pairs drawn
// uniformly at random over n vertices (the generator behind urand27).
// Self loops and duplicates produced by the draw are removed in
// preprocessing, and the largest connected component is extracted, exactly
// as the paper preprocesses its inputs. Vertex ids carry no locality, so
// the adjacency-gap distribution is the paper's worst-case reference line.
func Urand(scale int, degree int, seed uint64) *graph.CSR {
	n := 1 << scale
	m := n * degree / 2
	rng := NewRNG(seed)
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: rng.Int32n(int32(n)), V: rng.Int32n(int32(n))}
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
	if err != nil {
		panic(err) // generator produces in-range ids by construction
	}
	return g
}

// Kron generates a Kronecker (R-MAT) graph with the GAP/Graph500 edge
// probabilities A=0.57, B=0.19, C=0.19 (the generator behind kron27),
// followed by a random shuffle of vertex identifiers — the paper notes the
// GAP generator randomizes ids, which is why kron27's gap distribution
// coincides with urand27's. The result has a highly skewed degree
// distribution and low effective diameter.
func Kron(scale int, edgeFactor int, seed uint64) *graph.CSR {
	n := 1 << scale
	m := n * edgeFactor
	const a, b, c = 0.57, 0.19, 0.19
	rng := NewRNG(seed)
	perm := graph.RandomPermutation(n, rng.Uint64())
	edges := make([]graph.Edge, m)
	for i := range edges {
		var u, v int32
		for bit := 0; bit < scale; bit++ {
			p := rng.Float64()
			switch {
			case p < a:
				// top-left: no bits set
			case p < a+b:
				v |= 1 << bit
			case p < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		edges[i] = graph.Edge{U: perm[u], V: perm[v]}
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}

// ChungLu generates a power-law random graph by the Chung–Lu model with
// exponent gamma: each vertex gets weight w_i ∝ (i+1)^(-1/(gamma-1)) and
// edges are sampled proportional to w_u·w_v. After weight assignment the
// vertex ids are randomly shuffled. This is the twitter7 analogue: heavy
// degree skew, tiny diameter, no id locality.
func ChungLu(n int, avgDegree int, gamma float64, seed uint64) *graph.CSR {
	rng := NewRNG(seed)
	w := make([]float64, n)
	var total float64
	exp := -1.0 / (gamma - 1.0)
	for i := range w {
		w[i] = math.Pow(float64(i+1), exp)
		total += w[i]
	}
	// Cumulative distribution for endpoint sampling by inversion.
	cdf := make([]float64, n+1)
	for i := 0; i < n; i++ {
		cdf[i+1] = cdf[i] + w[i]/total
	}
	cdf[n] = 1
	sample := func() int32 {
		x := rng.Float64()
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}
	perm := graph.RandomPermutation(n, rng.Uint64())
	m := n * avgDegree / 2
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: perm[sample()], V: perm[sample()]}
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}

// WattsStrogatz generates a small-world graph: a ring lattice where each
// vertex connects to its k/2 nearest neighbors on each side, with every
// edge rewired to a random far endpoint with probability beta. Low beta
// keeps grid-like locality with a few long-range shortcuts — a useful
// middle ground between the road and urand regimes when studying the
// direction-optimizing switch.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.CSR {
	if k%2 != 0 {
		k++
	}
	rng := NewRNG(seed)
	edges := make([]graph.Edge, 0, n*k/2)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			u := (v + j) % n
			if rng.Float64() < beta {
				u = rng.Intn(n)
			}
			if u == v {
				continue
			}
			edges = append(edges, graph.Edge{U: int32(v), V: int32(u)})
		}
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}

// BarabasiAlbert generates a preferential-attachment graph: each new
// vertex attaches m edges to existing vertices with probability
// proportional to their degree (implemented with the repeated-endpoints
// trick: sampling a uniform position in the running edge list is
// degree-proportional). Power-law degrees with guaranteed connectivity —
// an alternative skewed-workload family to Kron/Chung-Lu.
func BarabasiAlbert(n, m int, seed uint64) *graph.CSR {
	if m < 1 {
		m = 1
	}
	rng := NewRNG(seed)
	// targets holds every edge endpoint ever created; sampling uniformly
	// from it is degree-proportional sampling.
	targets := make([]int32, 0, 2*n*m)
	edges := make([]graph.Edge, 0, n*m)
	// Seed clique of m+1 vertices.
	for i := 0; i <= m && i < n; i++ {
		for j := i + 1; j <= m && j < n; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
			targets = append(targets, int32(i), int32(j))
		}
	}
	for v := m + 1; v < n; v++ {
		attached := map[int32]bool{}
		for len(attached) < m {
			u := targets[rng.Intn(len(targets))]
			if int(u) == v || attached[u] {
				// Rejection keeps the distribution close to BA while
				// avoiding loops/multi-edges.
				u = int32(rng.Intn(v))
				if int(u) == v || attached[u] {
					continue
				}
			}
			attached[u] = true
			edges = append(edges, graph.Edge{U: int32(v), V: u})
			targets = append(targets, int32(v), u)
		}
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}
