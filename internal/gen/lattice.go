package gen

import (
	"sort"

	"repro/internal/graph"
)

// Grid2D generates a rows×cols 4-connected lattice — the ecology1
// analogue (ecology1 is literally a 1000×1000 grid stencil) and, with
// RandomWeights, a road-network-like weighted graph. Vertex ids follow
// row-major order, so adjacency gaps are 1 and cols: the near-ideal
// locality case in Figure 2's terms. The graph is connected by
// construction; diameter is rows+cols−2.
func Grid2D(rows, cols int) *graph.CSR {
	n := rows * cols
	id := func(r, c int) int32 { return int32(r*cols + c) }
	edges := make([]graph.Edge, 0, 2*n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		panic(err)
	}
	return g
}

// Road generates a road_usa analogue: a 2-D lattice whose edges are
// randomly thinned (keeping connectivity via a spanning backbone) and
// augmented with a few diagonal shortcuts, giving average degree ≈ 2.4 and
// very high diameter — the regime where direction-optimizing BFS wins
// least (Table 3's 2.9× row).
func Road(rows, cols int, seed uint64) *graph.CSR {
	n := rows * cols
	rng := NewRNG(seed)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	edges := make([]graph.Edge, 0, 2*n)
	// Spanning backbone: serpentine path through every cell keeps the
	// graph connected no matter how aggressively we thin the rest.
	for r := 0; r < rows; r++ {
		for c := 0; c+1 < cols; c++ {
			edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
		}
		if r+1 < rows {
			if r%2 == 0 {
				edges = append(edges, graph.Edge{U: id(r, cols-1), V: id(r+1, cols-1)})
			} else {
				edges = append(edges, graph.Edge{U: id(r, 0), V: id(r+1, 0)})
			}
		}
	}
	// Thinned vertical edges (~20%) add grid texture without collapsing
	// the diameter.
	for r := 0; r+1 < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.20 {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		panic(err)
	}
	return g
}

// Mesh3D generates an X×Y×Z 6-connected stencil mesh, the cage14 /
// CurlCurl_4 analogue: moderate uniform degree, moderate diameter, and
// banded adjacency (gaps of 1, X, and X·Y).
func Mesh3D(x, y, z int) *graph.CSR {
	n := x * y * z
	id := func(i, j, k int) int32 { return int32((k*y+j)*x + i) }
	edges := make([]graph.Edge, 0, 3*n)
	for k := 0; k < z; k++ {
		for j := 0; j < y; j++ {
			for i := 0; i < x; i++ {
				if i+1 < x {
					edges = append(edges, graph.Edge{U: id(i, j, k), V: id(i+1, j, k)})
				}
				if j+1 < y {
					edges = append(edges, graph.Edge{U: id(i, j, k), V: id(i, j+1, k)})
				}
				if k+1 < z {
					edges = append(edges, graph.Edge{U: id(i, j, k), V: id(i, j, k+1)})
				}
			}
		}
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		panic(err)
	}
	return g
}

// PowerGrid generates a kkt_power analogue: a sparse planar-ish backbone
// (thinned grid) coupled with a duplicated copy of itself through random
// "constraint" edges, mimicking the primal/dual block structure of a KKT
// optimization matrix. Average degree ≈ 6, irregular but not power-law.
func PowerGrid(rows, cols int, seed uint64) *graph.CSR {
	base := Road(rows, cols, seed)
	n := base.NumV
	rng := NewRNG(seed ^ 0xabcdef)
	edges := make([]graph.Edge, 0, int(base.NumEdges())*2+3*n)
	// Two coupled copies of the backbone.
	for v := int32(0); int(v) < n; v++ {
		for _, u := range base.Neighbors(v) {
			if u > v {
				edges = append(edges, graph.Edge{U: v, V: u})
				edges = append(edges, graph.Edge{U: v + int32(n), V: u + int32(n)})
			}
		}
		// Primal-dual coupling: each vertex ties to its twin and to a
		// couple of the twin's nearby vertices.
		edges = append(edges, graph.Edge{U: v, V: v + int32(n)})
		for t := 0; t < 2; t++ {
			jump := int32(rng.Intn(64)) - 32
			u := v + jump
			if u >= 0 && int(u) < n && u != v {
				edges = append(edges, graph.Edge{U: v, V: u + int32(n)})
			}
		}
	}
	g, err := graph.FromEdges(2*n, edges, graph.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}

// RandomGeometric generates a random geometric graph: n points uniform in
// the unit square, edges between pairs within the given radius (via a
// cell grid, so construction is near-linear). Ids are assigned in a
// left-to-right sweep, giving a locality-friendly ordering. RGGs are the
// standard "mesh-like but irregular" workload in layout papers.
func RandomGeometric(n int, radius float64, seed uint64) *graph.CSR {
	rng := NewRNG(seed)
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{rng.Float64(), rng.Float64()}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].x != pts[b].x {
			return pts[a].x < pts[b].x
		}
		return pts[a].y < pts[b].y
	})
	cells := int(1/radius) + 1
	grid := make(map[[2]int][]int32)
	cellOf := func(x, y float64) (int, int) {
		return int(x * float64(cells-1)), int(y * float64(cells-1))
	}
	for i := 0; i < n; i++ {
		cx, cy := cellOf(pts[i].x, pts[i].y)
		grid[[2]int{cx, cy}] = append(grid[[2]int{cx, cy}], int32(i))
	}
	r2 := radius * radius
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		cx, cy := cellOf(pts[i].x, pts[i].y)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[[2]int{cx + dx, cy + dy}] {
					if j <= int32(i) {
						continue
					}
					ddx, ddy := pts[i].x-pts[j].x, pts[i].y-pts[j].y
					if ddx*ddx+ddy*ddy <= r2 {
						edges = append(edges, graph.Edge{U: int32(i), V: j})
					}
				}
			}
		}
	}
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{})
	if err != nil {
		panic(err)
	}
	return g
}
