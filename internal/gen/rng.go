// Package gen provides the synthetic graph generators used by the
// evaluation harness. The first two (Urand, Kron) mirror the GAP Benchmark
// Suite generators the paper uses for urand27 and kron27; the rest are
// structural analogues for the SuiteSparse graphs in Table 2, constructed
// to match the originals on the axes the paper's analysis cares about:
// diameter, degree skew, and adjacency-gap locality.
package gen

// RNG is a splitmix64 pseudo-random generator: tiny state, excellent
// statistical quality, and trivially splittable so parallel generators can
// give each worker an independent deterministic stream.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with the given value.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split returns a new independent generator derived from r's stream.
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64()} }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly random integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int32n returns a uniformly random int32 in [0, n).
func (r *RNG) Int32n(n int32) int32 {
	return int32(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
