package gen

import "repro/internal/graph"

// Path returns the n-vertex path graph 0—1—…—(n−1): the paper's worst
// case for level-synchronous BFS depth and the "ideal" case for gap
// locality (every gap is 2).
func Path(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32(i + 1)})
	}
	return mustBuild(n, edges)
}

// Cycle returns the n-vertex cycle graph.
func Cycle(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: int32(i), V: int32((i + 1) % n)})
	}
	return mustBuild(n, edges)
}

// Star returns the (n−1)-leaf star with center 0.
func Star(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(i)})
	}
	return mustBuild(n, edges)
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: int32(i), V: int32(j)})
		}
	}
	return mustBuild(n, edges)
}

// BinaryTree returns the complete binary tree with n vertices, heap
// ordered (children of i are 2i+1 and 2i+2).
func BinaryTree(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: int32((i - 1) / 2), V: int32(i)})
	}
	return mustBuild(n, edges)
}

// WithRandomWeights returns a weighted copy of g with integer edge weights
// drawn uniformly from [1, maxW], symmetric across the two arcs of each
// edge — the configuration of the paper's "random integer weights" SSSP
// experiment.
func WithRandomWeights(g *graph.CSR, maxW int, seed uint64) *graph.CSR {
	rng := NewRNG(seed)
	w := make([]float64, len(g.Adj))
	for v := int32(0); int(v) < g.NumV; v++ {
		for k := g.Offsets[v]; k < g.Offsets[v+1]; k++ {
			u := g.Adj[k]
			if u < v {
				continue // weight assigned when visiting the lower endpoint
			}
			wt := float64(1 + rng.Intn(maxW))
			w[k] = wt
			// Mirror onto the reverse arc so the weighted graph stays
			// symmetric.
			lo, hi := g.Offsets[u], g.Offsets[u+1]
			for j := lo; j < hi; j++ {
				if g.Adj[j] == v {
					w[j] = wt
					break
				}
			}
		}
	}
	return &graph.CSR{NumV: g.NumV, Offsets: g.Offsets, Adj: g.Adj, Weights: w}
}

func mustBuild(n int, edges []graph.Edge) *graph.CSR {
	g, err := graph.FromEdges(n, edges, graph.BuildOptions{KeepAllComponents: true})
	if err != nil {
		panic(err)
	}
	return g
}
