package repro_bench

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the cmd binaries into a shared temp dir. The
// CLI integration tests exercise the tools end to end: generate → inspect
// → lay out → render, through real files.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, buf.String())
	}
	return buf.String()
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test builds binaries")
	}
	dir := t.TempDir()
	gengraphBin := buildTool(t, dir, "gengraph")
	graphinfoBin := buildTool(t, dir, "graphinfo")
	parhdeBin := buildTool(t, dir, "parhde")

	// 1. Generate a plate mesh as an edge list and as binary CSR.
	edgesPath := filepath.Join(dir, "plate.txt")
	binPath := filepath.Join(dir, "plate.bin")
	out := runTool(t, gengraphBin, "-kind", "plate", "-rows", "60", "-cols", "60", "-o", edgesPath)
	if !strings.Contains(out, "plate:") {
		t.Fatalf("gengraph output: %s", out)
	}
	runTool(t, gengraphBin, "-kind", "plate", "-rows", "60", "-cols", "60", "-o", binPath, "-format", "bin")

	// 2. Inspect it.
	info := runTool(t, graphinfoBin, "-in", edgesPath, "-gaps")
	for _, want := range []string{"vertices (n):", "edges (m):", "mean gap:", "gap histogram"} {
		if !strings.Contains(info, want) {
			t.Fatalf("graphinfo missing %q:\n%s", want, info)
		}
	}

	// 3. Lay it out from the edge list, writing coords + PNG.
	coordsPath := filepath.Join(dir, "plate.xy")
	pngPath := filepath.Join(dir, "plate.png")
	layOut := runTool(t, parhdeBin,
		"-in", edgesPath, "-s", "20", "-coords", coordsPath, "-png", pngPath)
	if !strings.Contains(layOut, "quality: Hall ratio") {
		t.Fatalf("parhde output: %s", layOut)
	}
	// Coordinates: one line per vertex, three fields.
	coordData, err := os.ReadFile(coordsPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(coordData)), "\n")
	if len(lines) < 1000 {
		t.Fatalf("only %d coordinate lines", len(lines))
	}
	if fields := strings.Fields(lines[0]); len(fields) != 3 {
		t.Fatalf("coordinate line %q", lines[0])
	}
	// PNG signature.
	pngData, err := os.ReadFile(pngPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pngData) < 8 || string(pngData[1:4]) != "PNG" {
		t.Fatal("output not a PNG")
	}

	// 4. The binary CSR path and the other algorithms work too.
	for _, algo := range []string{"phde", "pivotmds", "prior", "multilevel"} {
		out := runTool(t, parhdeBin, "-in", binPath, "-format", "bin", "-algo", algo, "-s", "15", "-q")
		if strings.TrimSpace(out) != "" && algo != "multilevel" {
			t.Fatalf("%s -q produced output: %s", algo, out)
		}
	}

	// 5. Zoom mode.
	zoomPNG := filepath.Join(dir, "zoom.png")
	zoomOut := runTool(t, parhdeBin, "-in", edgesPath, "-zoom", "500", "-hops", "8", "-png", zoomPNG)
	if !strings.Contains(zoomOut, "zoom:") {
		t.Fatalf("zoom output: %s", zoomOut)
	}
	if _, err := os.Stat(zoomPNG); err != nil {
		t.Fatal(err)
	}

	// 6. Error paths: bad algorithm, missing file.
	cmd := exec.Command(parhdeBin, "-in", edgesPath, "-algo", "nope")
	if err := cmd.Run(); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	cmd = exec.Command(parhdeBin, "-in", filepath.Join(dir, "missing.txt"))
	if err := cmd.Run(); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestCLIHdebenchList(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test builds binaries")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "hdebench")
	out := runTool(t, bin, "-list")
	for _, id := range []string{"table3", "fig4", "sssp", "multilevel", "quality"} {
		if !strings.Contains(out, id) {
			t.Fatalf("hdebench -list missing %s:\n%s", id, out)
		}
	}
	// A cheap experiment end to end.
	out = runTool(t, bin, "-exp", "table2")
	if !strings.Contains(out, "urand") || !strings.Contains(out, "pa2010") {
		t.Fatalf("table2 output:\n%s", out)
	}
}

func TestCLIWeightedAndRefine(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test builds binaries")
	}
	dir := t.TempDir()
	gengraphBin := buildTool(t, dir, "gengraph")
	parhdeBin := buildTool(t, dir, "parhde")
	wPath := filepath.Join(dir, "wgrid.txt")
	runTool(t, gengraphBin, "-kind", "grid", "-rows", "40", "-cols", "40", "-weights", "9", "-o", wPath)
	out := runTool(t, parhdeBin, "-in", wPath, "-weighted", "-s", "8", "-refine", "5")
	if !strings.Contains(out, "refine: 5 sweeps") {
		t.Fatalf("weighted+refine output: %s", out)
	}
}

func TestCLIHdeconvert(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test builds binaries")
	}
	dir := t.TempDir()
	gengraphBin := buildTool(t, dir, "gengraph")
	convertBin := buildTool(t, dir, "hdeconvert")

	src := filepath.Join(dir, "g.txt")
	runTool(t, gengraphBin, "-kind", "grid", "-rows", "30", "-cols", "30", "-o", src)

	// edges -> mtx -> bin -> edges round trip preserves size.
	mtx := filepath.Join(dir, "g.mtx")
	bin := filepath.Join(dir, "g.bin")
	back := filepath.Join(dir, "g2.txt")
	out1 := runTool(t, convertBin, "-in", src, "-out", mtx, "-to", "mtx")
	runTool(t, convertBin, "-in", mtx, "-from", "mtx", "-out", bin, "-to", "bin")
	out3 := runTool(t, convertBin, "-in", bin, "-from", "bin", "-out", back, "-to", "edges")
	if !strings.Contains(out1, "n=900") || !strings.Contains(out3, "n=900") {
		t.Fatalf("round trip changed size: %q %q", out1, out3)
	}

	// Permutation keeps sizes, changes mean gap.
	perm := filepath.Join(dir, "perm.txt")
	outP := runTool(t, convertBin, "-in", src, "-out", perm, "-permute", "-seed", "9")
	if !strings.Contains(outP, "n=900") {
		t.Fatalf("permute output: %q", outP)
	}

	// Neighborhood extraction shrinks the graph.
	ball := filepath.Join(dir, "ball.txt")
	outB := runTool(t, convertBin, "-in", src, "-out", ball, "-center", "465", "-hops", "3")
	if !strings.Contains(outB, "n=25") {
		t.Fatalf("3-hop ball of grid interior should have 25 vertices: %q", outB)
	}

	// Weight attachment produces a weighted file.
	wout := filepath.Join(dir, "w.txt")
	outW := runTool(t, convertBin, "-in", src, "-out", wout, "-add-weights", "9")
	if !strings.Contains(outW, "weighted=true") {
		t.Fatalf("weights output: %q", outW)
	}
}
