# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover fuzz bench experiments drawings clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	GOMAXPROCS=4 $(GO) test -race -count=1 ./...

cover:
	$(GO) test -cover ./internal/...

fuzz:
	$(GO) test ./internal/graph/ -fuzz FuzzReadBinary -fuzztime 30s
	$(GO) test ./internal/graph/ -fuzz FuzzReadEdgeList -fuzztime 15s
	$(GO) test ./internal/graph/ -fuzz FuzzReadMatrixMarket -fuzztime 15s

bench:
	$(GO) test -bench=. -benchmem ./...

# The full evaluation: every table and figure plus extension experiments.
# Scale up with FACTOR on bigger machines.
FACTOR ?= 1
experiments:
	$(GO) run ./cmd/hdebench -exp all -factor $(FACTOR) -out drawings

drawings:
	$(GO) run ./examples/drawing -out drawings

clean:
	rm -rf drawings test_output.txt bench_output.txt
